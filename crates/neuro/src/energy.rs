//! Spike-based energy accounting and latency model.
//!
//! The paper's open-problems section asks for the *energy complexity* of these matrix
//! multiplication circuits under the model of Uchizawa, Douglas and Maass: a gate is
//! charged one unit of energy exactly when it fires.  This module measures that
//! quantity on concrete evaluations.

use crate::DeviceSpec;
use tc_circuit::{Circuit, CircuitError, CompiledCircuit, Evaluation};
use tc_runtime::{Runtime, RuntimeError};

/// Energy accounting for one or more evaluations of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Number of evaluations aggregated.
    pub evaluations: usize,
    /// Total number of gate firings across all evaluations.
    pub total_firings: u64,
    /// Mean firings per evaluation.
    pub mean_firings: f64,
    /// Maximum firings observed in a single evaluation.
    pub max_firings: u64,
    /// Mean fraction of gates that fire per evaluation (0..1).
    pub mean_firing_fraction: f64,
    /// Mean energy per evaluation in the device's energy units
    /// (`mean_firings × energy_per_spike`).
    pub mean_energy: f64,
}

/// Latency estimate for one evaluation on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyReport {
    /// Circuit depth in layers.
    pub depth: u32,
    /// Estimated latency in nanoseconds (`depth × layer_time_ns`).
    pub latency_ns: f64,
}

/// Measures firing-based energy over a set of input assignments.
///
/// Compiles the circuit once and measures through
/// [`energy_over_inputs_compiled`]; callers that already hold a
/// [`CompiledCircuit`] (or measure repeatedly) should use that entry point
/// directly.
pub fn energy_over_inputs(
    circuit: &Circuit,
    device: &DeviceSpec,
    inputs: &[Vec<bool>],
) -> Result<EnergyReport, CircuitError> {
    energy_over_inputs_compiled(&circuit.compile()?, device, inputs)
}

/// Measures firing-based energy over a set of input assignments on an
/// already-compiled circuit.
///
/// Assignments ride the compiled engine's padded-tail batch path
/// ([`CompiledCircuit::evaluate_many`]), so the firing counts for a whole
/// input set cost a handful of bit-sliced passes over the CSR arrays rather
/// than one full evaluation per assignment.
pub fn energy_over_inputs_compiled(
    compiled: &CompiledCircuit,
    device: &DeviceSpec,
    inputs: &[Vec<bool>],
) -> Result<EnergyReport, CircuitError> {
    let many = compiled.evaluate_many(inputs)?;
    let counts = (0..inputs.len())
        .map(|i| many.firing_count(i).map(u64::from))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(report_from_counts(compiled.num_gates(), device, &counts))
}

/// Measures firing-based energy through a serving [`Runtime`]: sweeps route
/// through auto-tuned wide lane groups sharded across workers, and every
/// request's firing count comes back in the runtime's [`tc_runtime::Response`]
/// telemetry — the energy-sweep path used by the experiment binaries.
pub fn energy_over_inputs_runtime(
    runtime: &Runtime,
    compiled: &CompiledCircuit,
    device: &DeviceSpec,
    inputs: &[Vec<bool>],
) -> Result<EnergyReport, RuntimeError> {
    let responses = runtime.serve_batch(compiled, inputs)?;
    let counts: Vec<u64> = responses
        .iter()
        .map(|r| u64::from(r.firing_count))
        .collect();
    Ok(report_from_counts(compiled.num_gates(), device, &counts))
}

fn report_from_counts(num_gates: usize, device: &DeviceSpec, counts: &[u64]) -> EnergyReport {
    let total: u64 = counts.iter().sum();
    let n = counts.len().max(1);
    let mean = total as f64 / n as f64;
    let gates = num_gates.max(1) as f64;
    EnergyReport {
        evaluations: counts.len(),
        total_firings: total,
        mean_firings: mean,
        max_firings: counts.iter().copied().max().unwrap_or(0),
        mean_firing_fraction: mean / gates,
        mean_energy: mean * device.energy_per_spike,
    }
}

/// Builds an energy report from already-computed evaluations.
pub fn energy_of_evaluations(
    circuit: &Circuit,
    device: &DeviceSpec,
    evaluations: &[Evaluation],
) -> EnergyReport {
    let counts: Vec<u64> = evaluations
        .iter()
        .map(|ev| ev.firing_count() as u64)
        .collect();
    report_from_counts(circuit.num_gates(), device, &counts)
}

/// The latency of one layer-synchronous evaluation on a device.
pub fn latency(circuit: &Circuit, device: &DeviceSpec) -> LatencyReport {
    LatencyReport {
        depth: circuit.depth(),
        latency_ns: circuit.depth() as f64 * device.layer_time_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_circuit::{CircuitBuilder, Wire};

    fn or_and_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let or = b
            .add_gate([(Wire::input(0), 1), (Wire::input(1), 1)], 1)
            .unwrap();
        let and = b
            .add_gate([(Wire::input(0), 1), (Wire::input(1), 1)], 2)
            .unwrap();
        let both = b.add_gate([(or, 1), (and, 1)], 2).unwrap();
        b.mark_output(both);
        b.build()
    }

    #[test]
    fn energy_counts_firing_gates_only() {
        let c = or_and_circuit();
        let device = DeviceSpec::unconstrained();
        let inputs = vec![
            vec![false, false], // nothing fires
            vec![true, false],  // only OR fires
            vec![true, true],   // all three fire
        ];
        let report = energy_over_inputs(&c, &device, &inputs).unwrap();
        assert_eq!(report.evaluations, 3);
        assert_eq!(report.total_firings, 1 + 3);
        assert_eq!(report.max_firings, 3);
        assert!((report.mean_firings - 4.0 / 3.0).abs() < 1e-12);
        assert!((report.mean_firing_fraction - 4.0 / 9.0).abs() < 1e-12);
        assert!((report.mean_energy - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn compiled_entry_point_matches_per_evaluation_accounting() {
        let c = or_and_circuit();
        let device = DeviceSpec::unconstrained();
        // 70 assignments force two 64-lane batches.
        let inputs: Vec<Vec<bool>> = (0..70u32).map(|i| vec![i % 2 == 0, i % 3 == 0]).collect();
        let compiled = c.compile().unwrap();
        let batched = energy_over_inputs_compiled(&compiled, &device, &inputs).unwrap();
        let evaluations: Vec<Evaluation> = inputs
            .iter()
            .map(|bits| c.evaluate(bits).unwrap())
            .collect();
        let reference = energy_of_evaluations(&c, &device, &evaluations);
        assert_eq!(batched, reference);
    }

    #[test]
    fn runtime_energy_sweep_matches_the_compiled_path() {
        let c = or_and_circuit();
        let device = DeviceSpec::unconstrained();
        let inputs: Vec<Vec<bool>> = (0..300u32).map(|i| vec![i % 2 == 1, i % 5 == 0]).collect();
        let compiled = c.compile().unwrap();
        let runtime = Runtime::builder().fixed_backend("wide256").build();
        let through_runtime =
            energy_over_inputs_runtime(&runtime, &compiled, &device, &inputs).unwrap();
        let reference = energy_over_inputs_compiled(&compiled, &device, &inputs).unwrap();
        assert_eq!(through_runtime, reference);
        // The runtime's own firing telemetry agrees with the report.
        assert_eq!(runtime.telemetry().firings, reference.total_firings);
    }

    #[test]
    fn energy_scales_with_device_cost_per_spike() {
        let c = or_and_circuit();
        let mut device = DeviceSpec::unconstrained();
        device.energy_per_spike = 3.0;
        let report = energy_over_inputs(&c, &device, &[vec![true, true]]).unwrap();
        assert!((report.mean_energy - 9.0).abs() < 1e-12);
    }

    #[test]
    fn latency_is_depth_times_layer_time() {
        let c = or_and_circuit();
        let device = DeviceSpec::truenorth_like();
        let l = latency(&c, &device);
        assert_eq!(l.depth, 2);
        assert!((l.latency_ns - 2.0 * device.layer_time_ns).abs() < 1e-9);
    }

    #[test]
    fn energy_of_arithmetic_block() {
        // Energy of a real arithmetic block: a 4-bit signed adder built from tc-arith.
        use tc_arith::{weighted_sum_signed, InputAllocator};
        let mut alloc = InputAllocator::new();
        let x = alloc.alloc_signed(4);
        let y = alloc.alloc_signed(4);
        let mut b = CircuitBuilder::new(alloc.num_inputs());
        let s = weighted_sum_signed(&mut b, &[(&x, 1), (&y, 1)]).unwrap();
        s.mark_as_outputs(&mut b);
        let c = b.build();
        let mut bits = vec![false; c.num_inputs()];
        x.assign(7, &mut bits).unwrap();
        y.assign(-3, &mut bits).unwrap();
        let report = energy_over_inputs(&c, &DeviceSpec::unconstrained(), &[bits.clone()]).unwrap();
        assert!(report.total_firings > 0);
        assert!(report.mean_firing_fraction <= 1.0);
    }
}
