//! # neuro-sim — a neuromorphic-device simulator for threshold circuits
//!
//! The paper targets neuromorphic computing devices (TrueNorth, SpiNNaker, Loihi) that
//! implement threshold gates in hardware.  No such hardware is assumed here; instead
//! this crate simulates the device-level concerns the paper discusses so that the
//! generated circuits can be *executed*, *mapped*, and *costed*:
//!
//! * [`DeviceSpec`] — an abstract device with cores, a per-core neuron budget, an
//!   optional fan-in limit, per-spike energy and per-layer latency (presets modelled
//!   after the systems cited in the paper are provided);
//! * [`mapping`] — greedy placement of a circuit's gates onto cores, reporting core
//!   usage, fan-in violations, and inter-core traffic;
//! * [`energy`] — the firing-based energy model of Uchizawa, Douglas and Maass that the
//!   paper's open-problems section asks about (one unit of energy per firing gate), plus
//!   a latency model (depth × per-layer time);
//! * [`partition`] — the Section 5 workaround for bounded fan-in: splitting a matrix
//!   multiplication into independent row-block pieces of at most `ω√x` rows so that
//!   every piece fits a fan-in budget of `x`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod device;
pub mod energy;
pub mod mapping;
pub mod partition;

pub use device::DeviceSpec;
pub use energy::{EnergyReport, LatencyReport};
pub use mapping::MappingReport;
