//! Placing a threshold circuit onto a neuromorphic device.

use crate::DeviceSpec;
use tc_circuit::{Circuit, Wire};

/// The result of mapping a circuit onto a device.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingReport {
    /// Number of cores used by the placement.
    pub cores_used: usize,
    /// `true` when the circuit fits the device's total neuron budget.
    pub fits: bool,
    /// Fraction of the used cores' neuron capacity actually occupied.
    pub utilization: f64,
    /// Gates whose fan-in exceeds the device's per-neuron fan-in limit.
    pub fan_in_violations: usize,
    /// The largest fan-in in the circuit.
    pub max_fan_in: usize,
    /// Number of edges whose endpoints land on different cores (a proxy for routing /
    /// communication cost).
    pub inter_core_edges: usize,
    /// Number of edges staying within one core.
    pub intra_core_edges: usize,
}

/// Maps `circuit` onto `device` by filling cores with gates in topological order
/// (layer-major).  This mirrors how a straightforward compiler would place a
/// feed-forward circuit; it is deliberately simple, deterministic and fast.
pub fn map_circuit(circuit: &Circuit, device: &DeviceSpec) -> MappingReport {
    let per_core = device.neurons_per_core.max(1);
    let num_gates = circuit.num_gates();
    let cores_used = num_gates.div_ceil(per_core);
    let fits = num_gates <= device.total_neurons() && cores_used <= device.cores;

    // Core index of each gate under layer-major placement.
    let mut core_of = vec![0usize; num_gates];
    let mut placed = 0usize;
    for layer in circuit.layers() {
        for idx in layer {
            core_of[idx] = placed / per_core;
            placed += 1;
        }
    }

    let mut fan_in_violations = 0usize;
    let mut inter = 0usize;
    let mut intra = 0usize;
    for (idx, gate) in circuit.gates().iter().enumerate() {
        if let Some(limit) = device.max_fan_in {
            if gate.fan_in() > limit {
                fan_in_violations += 1;
            }
        }
        for &(wire, _) in gate.inputs() {
            match wire {
                Wire::Gate(src) => {
                    if core_of[src as usize] == core_of[idx] {
                        intra += 1;
                    } else {
                        inter += 1;
                    }
                }
                // Primary inputs arrive from off-chip; count them as inter-core traffic.
                Wire::Input(_) => inter += 1,
                Wire::One => {}
            }
        }
    }

    let utilization = if cores_used == 0 {
        0.0
    } else {
        num_gates as f64 / (cores_used * per_core) as f64
    };

    MappingReport {
        cores_used,
        fits,
        utilization,
        fan_in_violations,
        max_fan_in: circuit.max_fan_in(),
        inter_core_edges: inter,
        intra_core_edges: intra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_circuit::CircuitBuilder;

    fn chain_circuit(width: usize, layers: usize) -> Circuit {
        let mut b = CircuitBuilder::new(width);
        let mut prev: Vec<Wire> = (0..width).map(Wire::input).collect();
        for _ in 0..layers {
            let next: Vec<Wire> = prev
                .iter()
                .map(|&w| b.add_gate([(w, 1)], 1).unwrap())
                .collect();
            prev = next;
        }
        let out = b
            .add_gate(prev.iter().map(|&w| (w, 1)), width as i64 / 2)
            .unwrap();
        b.mark_output(out);
        b.build()
    }

    #[test]
    fn small_circuit_fits_every_preset() {
        let c = chain_circuit(8, 3);
        for device in [
            DeviceSpec::truenorth_like(),
            DeviceSpec::loihi_like(),
            DeviceSpec::spinnaker_like(),
        ] {
            let report = map_circuit(&c, &device);
            assert!(report.fits, "{}", device.name);
            assert_eq!(report.fan_in_violations, 0);
            assert_eq!(
                report.inter_core_edges + report.intra_core_edges,
                c.num_edges()
            );
            assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        }
    }

    #[test]
    fn cores_used_matches_gate_count() {
        let c = chain_circuit(100, 4); // 401 gates
        let mut device = DeviceSpec::truenorth_like();
        device.neurons_per_core = 100;
        let report = map_circuit(&c, &device);
        assert_eq!(report.cores_used, 5);
    }

    #[test]
    fn fan_in_violations_are_detected() {
        let c = chain_circuit(300, 1); // output gate has fan-in 300
        let mut device = DeviceSpec::truenorth_like();
        device.max_fan_in = Some(256);
        let report = map_circuit(&c, &device);
        assert_eq!(report.fan_in_violations, 1);
        assert_eq!(report.max_fan_in, 300);
        // The unconstrained device reports none.
        assert_eq!(
            map_circuit(&c, &DeviceSpec::unconstrained()).fan_in_violations,
            0
        );
    }

    #[test]
    fn capacity_overflow_is_reported() {
        let c = chain_circuit(50, 2);
        let tiny = DeviceSpec {
            name: "tiny".into(),
            cores: 1,
            neurons_per_core: 10,
            max_fan_in: None,
            energy_per_spike: 1.0,
            layer_time_ns: 1.0,
        };
        let report = map_circuit(&c, &tiny);
        assert!(!report.fits);
    }
}
