//! Fan-in-limited partitioning (Section 5 of the paper).
//!
//! The circuits use gates with fan-in as large as `O(N^ω)`.  Section 5 argues this is
//! not a practical obstacle for the convolutional-network workload: if the architecture
//! only supports fan-in `x`, the matrix multiplication can be broken into independent
//! pieces, each with at most `ω√x` rows of the first matrix, run in parallel at the same
//! depth.  This module implements that planning arithmetic.

/// A plan for splitting a `P × Q · Q × K` multiplication into independent row-block
/// pieces that each respect a fan-in budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowPartitionPlan {
    /// Rows of the first matrix per piece.
    pub rows_per_piece: usize,
    /// Number of pieces (the last piece may be smaller).
    pub num_pieces: usize,
    /// The fan-in budget the plan was computed for.
    pub max_fan_in: usize,
}

/// Computes the paper's row partition: each piece gets at most `⌊x^(1/ω)⌋` rows (and at
/// least one), so that a circuit built per piece has fan-in roughly bounded by `x`.
pub fn plan_row_partition(total_rows: usize, max_fan_in: usize, omega: f64) -> RowPartitionPlan {
    assert!(
        omega >= 2.0,
        "omega below 2 is information-theoretically impossible"
    );
    let rows_per_piece = (max_fan_in as f64).powf(1.0 / omega).floor() as usize;
    let rows_per_piece = rows_per_piece.clamp(1, total_rows.max(1));
    RowPartitionPlan {
        rows_per_piece,
        num_pieces: total_rows.div_ceil(rows_per_piece),
        max_fan_in,
    }
}

impl RowPartitionPlan {
    /// The row ranges (start, end) of each piece.
    pub fn pieces(&self, total_rows: usize) -> Vec<(usize, usize)> {
        (0..self.num_pieces)
            .map(|i| {
                let start = i * self.rows_per_piece;
                let end = ((i + 1) * self.rows_per_piece).min(total_rows);
                (start, end)
            })
            .filter(|(s, e)| e > s)
            .collect()
    }

    /// The predicted fan-in of a piece: `rows_per_piece^ω`, the quantity the paper
    /// bounds by the budget.
    pub fn predicted_piece_fan_in(&self, omega: f64) -> f64 {
        (self.rows_per_piece as f64).powf(omega)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRASSEN_OMEGA: f64 = 2.807354922057604; // log2(7)

    #[test]
    fn plan_respects_the_budget() {
        for &budget in &[256usize, 1024, 4096, 65536] {
            let plan = plan_row_partition(10_000, budget, STRASSEN_OMEGA);
            assert!(plan.rows_per_piece >= 1);
            assert!(
                plan.predicted_piece_fan_in(STRASSEN_OMEGA) <= budget as f64 + 1e-6,
                "budget {budget}: predicted fan-in {} too large",
                plan.predicted_piece_fan_in(STRASSEN_OMEGA)
            );
            // One more row per piece would blow the budget (or the piece already covers
            // all rows).
            let bigger = (plan.rows_per_piece + 1) as f64;
            assert!(
                bigger.powf(STRASSEN_OMEGA) > budget as f64 || plan.num_pieces == 1,
                "budget {budget}: pieces could have been larger"
            );
        }
    }

    #[test]
    fn pieces_cover_all_rows_without_overlap() {
        let plan = plan_row_partition(1000, 4096, STRASSEN_OMEGA);
        let pieces = plan.pieces(1000);
        assert_eq!(pieces.first().unwrap().0, 0);
        assert_eq!(pieces.last().unwrap().1, 1000);
        for w in pieces.windows(2) {
            assert_eq!(w[0].1, w[1].0, "pieces must tile the row range");
        }
        let covered: usize = pieces.iter().map(|(s, e)| e - s).sum();
        assert_eq!(covered, 1000);
    }

    #[test]
    fn tiny_budgets_still_make_progress() {
        let plan = plan_row_partition(100, 2, 3.0);
        assert_eq!(plan.rows_per_piece, 1);
        assert_eq!(plan.num_pieces, 100);
    }

    #[test]
    fn large_budget_keeps_everything_in_one_piece() {
        let plan = plan_row_partition(8, 1_000_000, STRASSEN_OMEGA);
        assert_eq!(plan.num_pieces, 1);
        assert_eq!(plan.pieces(8), vec![(0, 8)]);
    }

    #[test]
    #[should_panic(expected = "omega below 2")]
    fn rejects_impossible_omega() {
        plan_row_partition(10, 100, 1.5);
    }
}
