//! Abstract neuromorphic device descriptions.

use serde::{Deserialize, Serialize};

/// An abstract neuromorphic device: a grid of cores, each hosting a bounded number of
/// threshold neurons with a bounded fan-in.
///
/// The presets are *-like* models: they use the publicly quoted neuron/core counts of
/// the systems cited in the paper's introduction, but they are calibration points for
/// the simulator, not datasheets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of cores available.
    pub cores: usize,
    /// Neurons (threshold gates) per core.
    pub neurons_per_core: usize,
    /// Maximum fan-in a single neuron supports, if limited.
    pub max_fan_in: Option<usize>,
    /// Energy charged per spike (per firing gate), in arbitrary energy units.
    pub energy_per_spike: f64,
    /// Time to evaluate one circuit layer, in nanoseconds.
    pub layer_time_ns: f64,
}

impl DeviceSpec {
    /// A TrueNorth-like device: 4096 cores × 256 neurons, fan-in 256.
    pub fn truenorth_like() -> Self {
        DeviceSpec {
            name: "truenorth-like".into(),
            cores: 4096,
            neurons_per_core: 256,
            max_fan_in: Some(256),
            energy_per_spike: 1.0,
            layer_time_ns: 1_000_000.0, // 1 ms tick
        }
    }

    /// A Loihi-like device: 128 cores × 1024 neurons, large but bounded fan-in.
    pub fn loihi_like() -> Self {
        DeviceSpec {
            name: "loihi-like".into(),
            cores: 128,
            neurons_per_core: 1024,
            max_fan_in: Some(4096),
            energy_per_spike: 0.5,
            layer_time_ns: 10_000.0,
        }
    }

    /// A SpiNNaker-like device: many small software neurons, effectively unlimited
    /// fan-in but slower layer time.
    pub fn spinnaker_like() -> Self {
        DeviceSpec {
            name: "spinnaker-like".into(),
            cores: 1_036_800 / 255,
            neurons_per_core: 255,
            max_fan_in: None,
            energy_per_spike: 2.0,
            layer_time_ns: 1_000_000.0,
        }
    }

    /// An idealised unconstrained device (infinite cores and fan-in), useful as the
    /// "theory" baseline.
    pub fn unconstrained() -> Self {
        DeviceSpec {
            name: "unconstrained".into(),
            cores: usize::MAX,
            neurons_per_core: usize::MAX,
            max_fan_in: None,
            energy_per_spike: 1.0,
            layer_time_ns: 1.0,
        }
    }

    /// Total neuron capacity of the device (saturating).
    pub fn total_neurons(&self) -> usize {
        self.cores.saturating_mul(self.neurons_per_core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let tn = DeviceSpec::truenorth_like();
        assert_eq!(tn.total_neurons(), 1_048_576);
        assert_eq!(tn.max_fan_in, Some(256));
        let loihi = DeviceSpec::loihi_like();
        assert_eq!(loihi.total_neurons(), 131_072);
        let spin = DeviceSpec::spinnaker_like();
        assert!(spin.max_fan_in.is_none());
        assert!(DeviceSpec::unconstrained().total_neurons() >= tn.total_neurons());
    }
}
