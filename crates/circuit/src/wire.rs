//! Wires: the values flowing between gates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A wire in a threshold circuit.
///
/// A wire carries a single bit during evaluation.  It is one of
///
/// * a primary input of the circuit (`Wire::Input`),
/// * the output of a gate that was created earlier (`Wire::Gate`), or
/// * the constant-one wire (`Wire::One`), which always carries `1`.
///
/// The constant-one wire is a convenience: it lets constructions add a constant term to
/// a gate's weighted sum without special-casing the threshold, and it costs no gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Wire {
    /// The `i`-th primary input of the circuit (0-based).
    Input(u32),
    /// The output of the `i`-th gate of the circuit (0-based, in creation order).
    Gate(u32),
    /// The constant-one wire.
    One,
}

impl Wire {
    /// The `i`-th primary input.
    ///
    /// # Panics
    /// Panics if `i` does not fit in a `u32`.
    #[inline]
    pub fn input(i: usize) -> Self {
        Wire::Input(u32::try_from(i).expect("input index exceeds u32::MAX"))
    }

    /// The output of the `i`-th gate.
    ///
    /// # Panics
    /// Panics if `i` does not fit in a `u32`.
    #[inline]
    pub fn gate(i: usize) -> Self {
        Wire::Gate(u32::try_from(i).expect("gate index exceeds u32::MAX"))
    }

    /// The constant-one wire.
    #[inline]
    pub fn one() -> Self {
        Wire::One
    }

    /// Returns `true` if this wire is a primary input.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self, Wire::Input(_))
    }

    /// Returns `true` if this wire is a gate output.
    #[inline]
    pub fn is_gate(&self) -> bool {
        matches!(self, Wire::Gate(_))
    }

    /// Returns `true` if this wire is the constant-one wire.
    #[inline]
    pub fn is_const(&self) -> bool {
        matches!(self, Wire::One)
    }

    /// The input index if this is an input wire.
    #[inline]
    pub fn as_input(&self) -> Option<usize> {
        match self {
            Wire::Input(i) => Some(*i as usize),
            _ => None,
        }
    }

    /// The gate index if this is a gate-output wire.
    #[inline]
    pub fn as_gate(&self) -> Option<usize> {
        match self {
            Wire::Gate(i) => Some(*i as usize),
            _ => None,
        }
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Wire::Input(i) => write!(f, "x{i}"),
            Wire::Gate(i) => write!(f, "g{i}"),
            Wire::One => write!(f, "1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_roundtrip() {
        assert_eq!(Wire::input(3), Wire::Input(3));
        assert_eq!(Wire::gate(7), Wire::Gate(7));
        assert_eq!(Wire::one(), Wire::One);
    }

    #[test]
    fn predicates() {
        assert!(Wire::input(0).is_input());
        assert!(!Wire::input(0).is_gate());
        assert!(Wire::gate(0).is_gate());
        assert!(Wire::One.is_const());
        assert!(!Wire::gate(1).is_const());
    }

    #[test]
    fn accessors() {
        assert_eq!(Wire::input(5).as_input(), Some(5));
        assert_eq!(Wire::input(5).as_gate(), None);
        assert_eq!(Wire::gate(9).as_gate(), Some(9));
        assert_eq!(Wire::One.as_input(), None);
        assert_eq!(Wire::One.as_gate(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Wire::input(2).to_string(), "x2");
        assert_eq!(Wire::gate(4).to_string(), "g4");
        assert_eq!(Wire::One.to_string(), "1");
    }

    #[test]
    fn ordering_is_stable_within_kind() {
        assert!(Wire::Input(1) < Wire::Input(2));
        assert!(Wire::Gate(1) < Wire::Gate(2));
    }
}
