//! Evaluation results and options.
//!
//! The evaluators themselves live in [`crate::compiled`]: every evaluation —
//! scalar, layer-parallel, or 64-lane batch — runs off the CSR form produced
//! by [`Circuit::compile`](crate::Circuit::compile). The convenience methods
//! [`Circuit::evaluate`](crate::Circuit::evaluate) and
//! [`Circuit::evaluate_parallel`](crate::Circuit::evaluate_parallel) compile
//! on the fly; callers that evaluate the same circuit repeatedly should
//! compile once and reuse the [`CompiledCircuit`](crate::CompiledCircuit).

use crate::{CircuitError, Result};

/// Options controlling parallel evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Layers with fewer gates than this are evaluated sequentially to avoid
    /// paying thread-spawn overhead on tiny layers.
    pub parallel_threshold: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            parallel_threshold: 1024,
        }
    }
}

/// The result of evaluating a circuit on a concrete input assignment.
///
/// Holds the value of every gate (useful for energy accounting — a gate "fires" exactly
/// when its value is `1`) as well as the values on the designated output wires.
///
/// An empty (default) evaluation is a valid *shell*: response pools recycle
/// shells and refill them in place via
/// [`ArenaEvaluation::evaluation_into`](crate::ArenaEvaluation::evaluation_into),
/// reusing the buffers' capacity instead of reallocating per request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Evaluation {
    gate_values: Vec<bool>,
    outputs: Vec<bool>,
}

impl Evaluation {
    pub(crate) fn from_parts(gate_values: Vec<bool>, outputs: Vec<bool>) -> Self {
        Evaluation {
            gate_values,
            outputs,
        }
    }

    /// Mutable access to `(gate_values, outputs)` for in-place refills of a
    /// recycled shell (the arena writer clears and re-extends both, keeping
    /// their capacity).
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<bool>, &mut Vec<bool>) {
        (&mut self.gate_values, &mut self.outputs)
    }

    /// The values of the designated outputs, in marking order.
    #[inline]
    pub fn outputs(&self) -> &[bool] {
        &self.outputs
    }

    /// The value of output `i`.
    pub fn output(&self, i: usize) -> Result<bool> {
        self.outputs
            .get(i)
            .copied()
            .ok_or(CircuitError::OutputIndexOutOfRange {
                index: i,
                len: self.outputs.len(),
            })
    }

    /// The value computed by every gate, indexed by gate number.
    #[inline]
    pub fn gate_values(&self) -> &[bool] {
        &self.gate_values
    }

    /// Number of gates that fired (output value 1).
    ///
    /// This is the *energy* of the evaluation under the model of Uchizawa, Douglas and
    /// Maass (cited in the paper's open problems): one unit of energy per firing gate.
    pub fn firing_count(&self) -> usize {
        self.gate_values.iter().filter(|&&v| v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, CircuitBuilder, Wire};

    /// Builds a chain of alternating AND/OR gates with one extra "wide" layer to
    /// exercise both code paths of the parallel evaluator.
    fn build_mixed_circuit(width: usize) -> Circuit {
        let mut b = CircuitBuilder::new(width);
        let mut layer1 = Vec::new();
        for i in 0..width {
            let g = b
                .add_gate([(Wire::input(i), 1), (Wire::input((i + 1) % width), 1)], 1)
                .unwrap();
            layer1.push(g);
        }
        // A single output gate: majority over the first layer.
        let maj = b
            .add_gate(
                layer1.iter().map(|&w| (w, 1)).collect::<Vec<_>>(),
                (width as i64 + 1) / 2,
            )
            .unwrap();
        b.mark_output(maj);
        b.build()
    }

    #[test]
    fn sequential_and_parallel_agree_on_random_inputs() {
        let width = 40;
        let c = build_mixed_circuit(width);
        // Deterministic pseudo-random inputs (xorshift) — no rand dependency needed.
        let mut state: u64 = 0x2545F4914F6CDD1D;
        for _ in 0..50 {
            let mut inputs = Vec::with_capacity(width);
            for _ in 0..width {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                inputs.push(state & 1 == 1);
            }
            let seq = c.evaluate(&inputs).unwrap();
            let par = c
                .evaluate_parallel(
                    &inputs,
                    EvalOptions {
                        parallel_threshold: 1,
                    },
                )
                .unwrap();
            assert_eq!(seq, par);
        }
    }

    #[test]
    fn firing_count_counts_ones() {
        let mut b = CircuitBuilder::new(1);
        let x = Wire::input(0);
        let fires = b.add_gate([(x, 1)], 1).unwrap(); // = x
        let never = b.add_gate([(x, 1)], 2).unwrap(); // constant 0
        let always = b.add_gate([(x, 1)], 0).unwrap(); // constant 1
        b.mark_outputs([fires, never, always]);
        let c = b.build();
        let ev = c.evaluate(&[true]).unwrap();
        assert_eq!(ev.firing_count(), 2);
        let ev = c.evaluate(&[false]).unwrap();
        assert_eq!(ev.firing_count(), 1);
    }

    #[test]
    fn output_accessor_bounds_check() {
        let mut b = CircuitBuilder::new(1);
        let g = b.add_gate([(Wire::input(0), 1)], 1).unwrap();
        b.mark_output(g);
        let c = b.build();
        let ev = c.evaluate(&[true]).unwrap();
        assert!(ev.output(0).unwrap());
        assert!(matches!(
            ev.output(1),
            Err(CircuitError::OutputIndexOutOfRange { index: 1, len: 1 })
        ));
    }

    #[test]
    fn outputs_may_reference_inputs_directly() {
        let mut b = CircuitBuilder::new(2);
        b.mark_output(Wire::input(1));
        b.mark_output(Wire::One);
        let c = b.build();
        let ev = c.evaluate(&[false, true]).unwrap();
        assert_eq!(ev.outputs(), &[true, true]);
    }
}
