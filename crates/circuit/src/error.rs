//! Error type for circuit construction and evaluation.

use crate::Wire;
use std::fmt;

/// Errors produced while building, validating, or evaluating threshold circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a wire that does not (yet) exist.
    ///
    /// Gates may only reference primary inputs, the constant-one wire, or gates created
    /// strictly before them.
    DanglingWire {
        /// The offending wire reference.
        wire: Wire,
        /// Number of primary inputs in the circuit.
        num_inputs: usize,
        /// Number of gates existing at the time of the reference.
        num_gates: usize,
    },
    /// A gate was created with an empty fan-in list.
    EmptyFanIn,
    /// The same wire appears more than once in a single gate's fan-in list.
    DuplicateFanIn {
        /// The duplicated wire.
        wire: Wire,
    },
    /// Evaluation was given the wrong number of input bits.
    InputLengthMismatch {
        /// Inputs expected by the circuit.
        expected: usize,
        /// Inputs provided by the caller.
        actual: usize,
    },
    /// An output index passed to an accessor was out of range.
    OutputIndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of outputs.
        len: usize,
    },
    /// A weighted sum overflowed the 128-bit accumulator during evaluation.
    ///
    /// This cannot happen for circuits produced by the constructions in this workspace
    /// (weights are bounded by the bit-width preconditions), but is reported rather than
    /// silently wrapping for hand-built circuits.
    ArithmeticOverflow {
        /// Index of the gate whose sum overflowed.
        gate: usize,
    },
    /// The circuit does not fit the compiled engine's `u32` slot space.
    CircuitTooLarge {
        /// Number of primary inputs.
        inputs: usize,
        /// Number of gates.
        gates: usize,
    },
    /// More than 64 assignments were packed into one bit-sliced batch.
    BatchTooWide {
        /// Number of assignments offered.
        rows: usize,
    },
    /// A batch-evaluation accessor was given a lane beyond the batch width.
    LaneOutOfRange {
        /// The requested lane.
        lane: usize,
        /// Number of valid lanes in the batch.
        lanes: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DanglingWire {
                wire,
                num_inputs,
                num_gates,
            } => write!(
                f,
                "gate references wire {wire} but the circuit has {num_inputs} inputs and {num_gates} gates so far"
            ),
            CircuitError::EmptyFanIn => write!(f, "threshold gate must have at least one input"),
            CircuitError::DuplicateFanIn { wire } => {
                write!(f, "wire {wire} appears more than once in a gate's fan-in")
            }
            CircuitError::InputLengthMismatch { expected, actual } => write!(
                f,
                "circuit expects {expected} input bits but {actual} were provided"
            ),
            CircuitError::OutputIndexOutOfRange { index, len } => {
                write!(f, "output index {index} out of range (circuit has {len} outputs)")
            }
            CircuitError::ArithmeticOverflow { gate } => {
                write!(f, "weighted sum overflowed i128 while evaluating gate {gate}")
            }
            CircuitError::CircuitTooLarge { inputs, gates } => write!(
                f,
                "circuit with {inputs} inputs and {gates} gates exceeds the u32 slot space of the compiled engine"
            ),
            CircuitError::BatchTooWide { rows } => {
                write!(f, "a bit-sliced batch holds at most 64 assignments, got {rows}")
            }
            CircuitError::LaneOutOfRange { lane, lanes } => {
                write!(f, "lane {lane} out of range (batch has {lanes} lanes)")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_quantities() {
        let e = CircuitError::DanglingWire {
            wire: Wire::gate(10),
            num_inputs: 4,
            num_gates: 3,
        };
        let s = e.to_string();
        assert!(s.contains("g10"));
        assert!(s.contains('4'));
        assert!(s.contains('3'));

        let e = CircuitError::InputLengthMismatch {
            expected: 8,
            actual: 5,
        };
        assert!(e.to_string().contains('8'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CircuitError::EmptyFanIn);
    }
}
