//! Explicit SIMD backends for the width-generic plane kernel, with runtime
//! CPU-feature detection and a force-portable switch.
//!
//! The kernel in `kernel.rs` treats every word-column of a `[u64; W]` plane
//! as an independent 64-lane instance — carries never cross words — so the
//! `W` words of one plane are exactly the lanes of one vector register:
//! 128-bit SSE2/NEON for `W = 2`, 256-bit AVX2 for `W = 4`, 512-bit AVX-512
//! (or an AVX2 pair) for `W = 8`. This module provides the [`WordVec`]
//! abstraction the kernel is generic over, the per-ISA implementations, and
//! the dispatch policy ([`active_level`]).
//!
//! Every implementation computes bit-identical results: the vector ripple
//! loops run while *any* word-column still carries (finished columns see
//! no-op lane operations), so the portable `[u64; W]` implementation — the
//! differential oracle the SIMD proptests compare against — and the
//! vectorized paths agree bit-for-bit.
//!
//! ## Forcing the portable fallback
//!
//! Set `TCMM_SIMD=off` (or `0`, `portable`, `none`) in the environment to
//! disable vector dispatch process-wide (CI runs the whole test suite this
//! way so both arms stay green), or cap it with `TCMM_SIMD=sse2` /
//! `TCMM_SIMD=avx2`. Tests that need both arms in one process use
//! [`force_portable`], a runtime override that wins over detection.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The vector ISA the plane kernel dispatches to, as reported by
/// [`active_level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// No vector dispatch: the portable `[u64; W]` loops (also the
    /// differential oracle).
    Portable,
    /// 128-bit SSE2 (x86_64 baseline): `W = 2` rides one register.
    Sse2,
    /// 256-bit AVX2: `W = 4` rides one register, `W = 8` a pair.
    Avx2,
    /// 512-bit AVX-512F: `W = 8` rides one register.
    Avx512,
    /// 128-bit NEON (aarch64 baseline): wider widths ride register pairs.
    Neon,
}

impl SimdLevel {
    /// Human-readable name (telemetry / bench reports).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Portable => "portable",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
            SimdLevel::Neon => "neon",
        }
    }
}

static FORCE_PORTABLE: AtomicBool = AtomicBool::new(false);
static DETECTED: OnceLock<SimdLevel> = OnceLock::new();

/// Detects the best supported level, capped by the `TCMM_SIMD` environment
/// variable (read once per process).
fn detect() -> SimdLevel {
    let cap = match std::env::var("TCMM_SIMD") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "off" | "0" | "portable" | "none" => return SimdLevel::Portable,
            "sse2" => SimdLevel::Sse2,
            "avx2" => SimdLevel::Avx2,
            // Unknown values (and explicit "avx512"/"neon"/"on") leave the
            // hardware ceiling in charge.
            _ => SimdLevel::Avx512,
        },
        Err(_) => SimdLevel::Avx512,
    };
    hardware_level(cap)
}

#[cfg(target_arch = "x86_64")]
fn hardware_level(cap: SimdLevel) -> SimdLevel {
    let rank = |l: SimdLevel| match l {
        SimdLevel::Portable => 0,
        SimdLevel::Sse2 => 1,
        SimdLevel::Avx2 => 2,
        _ => 3,
    };
    let hw = if std::arch::is_x86_feature_detected!("avx512f") {
        SimdLevel::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        // SSE2 is part of the x86_64 baseline.
        SimdLevel::Sse2
    };
    if rank(cap) < rank(hw) {
        cap
    } else {
        hw
    }
}

#[cfg(target_arch = "aarch64")]
fn hardware_level(cap: SimdLevel) -> SimdLevel {
    // NEON is part of the aarch64 baseline; the only meaningful cap is
    // "portable", handled before detection.
    let _ = cap;
    SimdLevel::Neon
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn hardware_level(_cap: SimdLevel) -> SimdLevel {
    SimdLevel::Portable
}

/// The level detection found for this process (hardware ∩ `TCMM_SIMD` cap),
/// ignoring any [`force_portable`] override.
pub fn detected_level() -> SimdLevel {
    *DETECTED.get_or_init(detect)
}

/// Forces (or releases) the portable fallback at runtime, overriding
/// detection. Process-global; intended for differential tests and
/// experiments that must exercise both dispatch arms in one process.
/// Either arm is always correct, so a concurrent reader only ever observes
/// a valid configuration.
pub fn force_portable(force: bool) {
    FORCE_PORTABLE.store(force, Ordering::Relaxed);
}

/// Whether [`force_portable`] is currently in effect.
pub fn portable_forced() -> bool {
    FORCE_PORTABLE.load(Ordering::Relaxed)
}

/// The level the kernel dispatches on *right now*:
/// [`detected_level`] unless the portable fallback is forced.
pub fn active_level() -> SimdLevel {
    if portable_forced() {
        SimdLevel::Portable
    } else {
        detected_level()
    }
}

/// Whether width-`w` word-columns currently ride vector registers (`false`
/// for the portable arm and for `w = 1`, which has nothing to vectorize).
/// Backend cost models use this to price wide passes.
pub fn vectorized_width(w: usize) -> bool {
    match active_level() {
        SimdLevel::Portable => false,
        SimdLevel::Sse2 => w == 2,
        SimdLevel::Avx2 | SimdLevel::Avx512 | SimdLevel::Neon => matches!(w, 2 | 4 | 8),
    }
}

/// The vector abstraction the plane kernel is generic over: one value holds
/// the `W` word-columns of a single plane.
///
/// Implementations must be bitwise-exact (they only permute/combine lane
/// bits), so every instantiation of the kernel produces identical results.
/// SIMD implementations may only be *dispatched to* when the corresponding
/// CPU feature is present (enforced by `active_level` in `kernel.rs`);
/// their methods are `#[inline(always)]` so they compile inside the
/// `#[target_feature]` dispatch wrappers.
pub(crate) trait WordVec<const W: usize>: Copy {
    /// All-zero lanes.
    fn zero() -> Self;
    /// All-one lanes.
    fn ones() -> Self;
    /// Loads one plane's word-columns (unaligned).
    fn load(a: &[u64; W]) -> Self;
    /// Stores back into one plane's word-columns (unaligned).
    fn store(self, a: &mut [u64; W]);
    /// Lane-wise XOR.
    fn xor(self, o: Self) -> Self;
    /// Lane-wise AND.
    fn and(self, o: Self) -> Self;
    /// Lane-wise OR.
    fn or(self, o: Self) -> Self;
    /// Lane-wise NOT.
    fn not(self) -> Self;
    /// `true` iff any bit of any lane is set (ripple-loop termination).
    fn any(self) -> bool;

    /// Three-way XOR (carry-save sum); AVX-512 overrides with one
    /// `vpternlogq`.
    #[inline(always)]
    fn xor3(self, b: Self, c: Self) -> Self {
        self.xor(b).xor(c)
    }

    /// Bitwise majority (carry-save carry); AVX-512 overrides with one
    /// `vpternlogq`.
    #[inline(always)]
    fn maj(self, b: Self, c: Self) -> Self {
        (self.and(b)).or(self.or(b).and(c))
    }
}

/// The portable implementation: plain `[u64; W]` lane arithmetic. This is
/// the differential oracle every SIMD path is tested against, and the
/// fallback when no vector ISA covers `W`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Words<const W: usize>([u64; W]);

impl<const W: usize> WordVec<W> for Words<W> {
    #[inline(always)]
    fn zero() -> Self {
        Words([0u64; W])
    }
    #[inline(always)]
    fn ones() -> Self {
        Words([!0u64; W])
    }
    #[inline(always)]
    fn load(a: &[u64; W]) -> Self {
        Words(*a)
    }
    #[inline(always)]
    fn store(self, a: &mut [u64; W]) {
        *a = self.0;
    }
    #[inline(always)]
    fn xor(mut self, o: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(o.0) {
            *a ^= b;
        }
        self
    }
    #[inline(always)]
    fn and(mut self, o: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(o.0) {
            *a &= b;
        }
        self
    }
    #[inline(always)]
    fn or(mut self, o: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(o.0) {
            *a |= b;
        }
        self
    }
    #[inline(always)]
    fn not(mut self) -> Self {
        for a in self.0.iter_mut() {
            *a = !*a;
        }
        self
    }
    #[inline(always)]
    fn any(self) -> bool {
        self.0.iter().any(|&w| w != 0)
    }
}

/// Splits a `[u64; 4]` plane into its two `[u64; 2]` halves.
#[inline(always)]
fn halves4(a: &[u64; 4]) -> (&[u64; 2], &[u64; 2]) {
    // SAFETY: `[u64; 4]` is exactly two adjacent `[u64; 2]` (no padding).
    unsafe {
        (
            &*(a.as_ptr() as *const [u64; 2]),
            &*(a.as_ptr().add(2) as *const [u64; 2]),
        )
    }
}

/// Splits a `[u64; 8]` plane into its two `[u64; 4]` halves.
#[inline(always)]
fn halves8(a: &[u64; 8]) -> (&[u64; 4], &[u64; 4]) {
    // SAFETY: `[u64; 8]` is exactly two adjacent `[u64; 4]` (no padding).
    unsafe {
        (
            &*(a.as_ptr() as *const [u64; 4]),
            &*(a.as_ptr().add(4) as *const [u64; 4]),
        )
    }
}

/// A `W = 4` vector built from two `W = 2` halves (NEON and pre-AVX2 x86).
#[derive(Clone, Copy)]
pub(crate) struct Pair4<V>(V, V);

impl<V: WordVec<2>> WordVec<4> for Pair4<V> {
    #[inline(always)]
    fn zero() -> Self {
        Pair4(V::zero(), V::zero())
    }
    #[inline(always)]
    fn ones() -> Self {
        Pair4(V::ones(), V::ones())
    }
    #[inline(always)]
    fn load(a: &[u64; 4]) -> Self {
        let (lo, hi) = halves4(a);
        Pair4(V::load(lo), V::load(hi))
    }
    #[inline(always)]
    fn store(self, a: &mut [u64; 4]) {
        let mut lo = [0u64; 2];
        let mut hi = [0u64; 2];
        self.0.store(&mut lo);
        self.1.store(&mut hi);
        a[..2].copy_from_slice(&lo);
        a[2..].copy_from_slice(&hi);
    }
    #[inline(always)]
    fn xor(self, o: Self) -> Self {
        Pair4(self.0.xor(o.0), self.1.xor(o.1))
    }
    #[inline(always)]
    fn and(self, o: Self) -> Self {
        Pair4(self.0.and(o.0), self.1.and(o.1))
    }
    #[inline(always)]
    fn or(self, o: Self) -> Self {
        Pair4(self.0.or(o.0), self.1.or(o.1))
    }
    #[inline(always)]
    fn not(self) -> Self {
        Pair4(self.0.not(), self.1.not())
    }
    #[inline(always)]
    fn any(self) -> bool {
        self.0.any() || self.1.any()
    }
}

/// A `W = 8` vector built from two `W = 4` halves (AVX2 pair, NEON quads).
#[derive(Clone, Copy)]
pub(crate) struct Pair8<V>(V, V);

impl<V: WordVec<4>> WordVec<8> for Pair8<V> {
    #[inline(always)]
    fn zero() -> Self {
        Pair8(V::zero(), V::zero())
    }
    #[inline(always)]
    fn ones() -> Self {
        Pair8(V::ones(), V::ones())
    }
    #[inline(always)]
    fn load(a: &[u64; 8]) -> Self {
        let (lo, hi) = halves8(a);
        Pair8(V::load(lo), V::load(hi))
    }
    #[inline(always)]
    fn store(self, a: &mut [u64; 8]) {
        let mut lo = [0u64; 4];
        let mut hi = [0u64; 4];
        self.0.store(&mut lo);
        self.1.store(&mut hi);
        a[..4].copy_from_slice(&lo);
        a[4..].copy_from_slice(&hi);
    }
    #[inline(always)]
    fn xor(self, o: Self) -> Self {
        Pair8(self.0.xor(o.0), self.1.xor(o.1))
    }
    #[inline(always)]
    fn and(self, o: Self) -> Self {
        Pair8(self.0.and(o.0), self.1.and(o.1))
    }
    #[inline(always)]
    fn or(self, o: Self) -> Self {
        Pair8(self.0.or(o.0), self.1.or(o.1))
    }
    #[inline(always)]
    fn not(self) -> Self {
        Pair8(self.0.not(), self.1.not())
    }
    #[inline(always)]
    fn any(self) -> bool {
        self.0.any() || self.1.any()
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! x86_64 implementations. SSE2 is a baseline feature, so its
    //! intrinsics run unconditionally; the AVX2/AVX-512 types are only
    //! dispatched to after `is_x86_feature_detected!` succeeds, from
    //! `#[target_feature]` wrappers in `kernel.rs`.
    #![allow(unused_unsafe)] // intrinsic safety varies with static features

    use super::WordVec;
    use std::arch::x86_64::*;

    /// One 128-bit SSE2 register carrying a `W = 2` plane.
    #[derive(Clone, Copy)]
    pub(crate) struct Sse2(__m128i);

    impl WordVec<2> for Sse2 {
        #[inline(always)]
        fn zero() -> Self {
            // SAFETY: SSE2 is baseline on x86_64; register-only, no memory.
            unsafe { Sse2(_mm_setzero_si128()) }
        }
        #[inline(always)]
        fn ones() -> Self {
            // SAFETY: SSE2 is baseline on x86_64; register-only, no memory.
            unsafe { Sse2(_mm_set1_epi64x(-1)) }
        }
        #[inline(always)]
        fn load(a: &[u64; 2]) -> Self {
            // SAFETY: `a` spans exactly the 16 bytes read and `loadu` has
            // no alignment requirement; SSE2 is baseline on x86_64.
            unsafe { Sse2(_mm_loadu_si128(a.as_ptr() as *const __m128i)) }
        }
        #[inline(always)]
        fn store(self, a: &mut [u64; 2]) {
            // SAFETY: `a` spans exactly the 16 bytes written and `storeu`
            // has no alignment requirement; SSE2 is baseline on x86_64.
            unsafe { _mm_storeu_si128(a.as_mut_ptr() as *mut __m128i, self.0) }
        }
        #[inline(always)]
        fn xor(self, o: Self) -> Self {
            // SAFETY: SSE2 is baseline on x86_64; register-only, no memory.
            unsafe { Sse2(_mm_xor_si128(self.0, o.0)) }
        }
        #[inline(always)]
        fn and(self, o: Self) -> Self {
            // SAFETY: SSE2 is baseline on x86_64; register-only, no memory.
            unsafe { Sse2(_mm_and_si128(self.0, o.0)) }
        }
        #[inline(always)]
        fn or(self, o: Self) -> Self {
            // SAFETY: SSE2 is baseline on x86_64; register-only, no memory.
            unsafe { Sse2(_mm_or_si128(self.0, o.0)) }
        }
        #[inline(always)]
        fn not(self) -> Self {
            // SAFETY: SSE2 is baseline on x86_64; register-only, no memory.
            unsafe { Sse2(_mm_xor_si128(self.0, _mm_set1_epi64x(-1))) }
        }
        #[inline(always)]
        fn any(self) -> bool {
            // SAFETY: SSE2 is baseline on x86_64; register-only, no memory.
            unsafe {
                let eq0 = _mm_cmpeq_epi32(self.0, _mm_setzero_si128());
                _mm_movemask_epi8(eq0) != 0xFFFF
            }
        }
    }

    /// One 256-bit AVX2 register carrying a `W = 4` plane.
    #[derive(Clone, Copy)]
    pub(crate) struct Avx2(__m256i);

    impl WordVec<4> for Avx2 {
        #[inline(always)]
        fn zero() -> Self {
            // SAFETY: AVX2 register-only op; this type is constructed only
            // behind a runtime `avx2` check (see the kernel.rs dispatch).
            unsafe { Avx2(_mm256_setzero_si256()) }
        }
        #[inline(always)]
        fn ones() -> Self {
            // SAFETY: AVX2 register-only op behind the runtime avx2 check.
            unsafe { Avx2(_mm256_set1_epi64x(-1)) }
        }
        #[inline(always)]
        fn load(a: &[u64; 4]) -> Self {
            // SAFETY: `a` spans exactly the 32 bytes read and `loadu` has
            // no alignment requirement; AVX2 verified at dispatch time.
            unsafe { Avx2(_mm256_loadu_si256(a.as_ptr() as *const __m256i)) }
        }
        #[inline(always)]
        fn store(self, a: &mut [u64; 4]) {
            // SAFETY: `a` spans exactly the 32 bytes written and `storeu`
            // has no alignment requirement; AVX2 verified at dispatch time.
            unsafe { _mm256_storeu_si256(a.as_mut_ptr() as *mut __m256i, self.0) }
        }
        #[inline(always)]
        fn xor(self, o: Self) -> Self {
            // SAFETY: AVX2 register-only op behind the runtime avx2 check.
            unsafe { Avx2(_mm256_xor_si256(self.0, o.0)) }
        }
        #[inline(always)]
        fn and(self, o: Self) -> Self {
            // SAFETY: AVX2 register-only op behind the runtime avx2 check.
            unsafe { Avx2(_mm256_and_si256(self.0, o.0)) }
        }
        #[inline(always)]
        fn or(self, o: Self) -> Self {
            // SAFETY: AVX2 register-only op behind the runtime avx2 check.
            unsafe { Avx2(_mm256_or_si256(self.0, o.0)) }
        }
        #[inline(always)]
        fn not(self) -> Self {
            // SAFETY: AVX2 register-only op behind the runtime avx2 check.
            unsafe { Avx2(_mm256_xor_si256(self.0, _mm256_set1_epi64x(-1))) }
        }
        #[inline(always)]
        fn any(self) -> bool {
            // SAFETY: AVX register-only op behind the runtime avx2 check.
            unsafe { _mm256_testz_si256(self.0, self.0) == 0 }
        }
    }

    /// One 512-bit AVX-512F register carrying a `W = 8` plane. `xor3` and
    /// `maj` collapse to single `vpternlogq` instructions.
    #[derive(Clone, Copy)]
    pub(crate) struct Avx512(__m512i);

    impl WordVec<8> for Avx512 {
        #[inline(always)]
        fn zero() -> Self {
            // SAFETY: AVX-512F register-only op; this type is constructed
            // only behind a runtime `avx512f` check (kernel.rs dispatch).
            unsafe { Avx512(_mm512_setzero_si512()) }
        }
        #[inline(always)]
        fn ones() -> Self {
            // SAFETY: AVX-512F register-only op behind the avx512f check.
            unsafe { Avx512(_mm512_set1_epi64(-1)) }
        }
        #[inline(always)]
        fn load(a: &[u64; 8]) -> Self {
            // SAFETY: `a` spans exactly the 64 bytes read and `loadu` has
            // no alignment requirement; AVX-512F verified at dispatch time.
            unsafe { Avx512(_mm512_loadu_si512(a.as_ptr() as *const __m512i)) }
        }
        #[inline(always)]
        fn store(self, a: &mut [u64; 8]) {
            // SAFETY: `a` spans exactly the 64 bytes written and `storeu`
            // has no alignment requirement; AVX-512F verified at dispatch.
            unsafe { _mm512_storeu_si512(a.as_mut_ptr() as *mut __m512i, self.0) }
        }
        #[inline(always)]
        fn xor(self, o: Self) -> Self {
            // SAFETY: AVX-512F register-only op behind the avx512f check.
            unsafe { Avx512(_mm512_xor_si512(self.0, o.0)) }
        }
        #[inline(always)]
        fn and(self, o: Self) -> Self {
            // SAFETY: AVX-512F register-only op behind the avx512f check.
            unsafe { Avx512(_mm512_and_si512(self.0, o.0)) }
        }
        #[inline(always)]
        fn or(self, o: Self) -> Self {
            // SAFETY: AVX-512F register-only op behind the avx512f check.
            unsafe { Avx512(_mm512_or_si512(self.0, o.0)) }
        }
        #[inline(always)]
        fn not(self) -> Self {
            // SAFETY: AVX-512F register-only op behind the avx512f check.
            unsafe { Avx512(_mm512_xor_si512(self.0, _mm512_set1_epi64(-1))) }
        }
        #[inline(always)]
        fn any(self) -> bool {
            // SAFETY: AVX-512F register-only op behind the avx512f check.
            unsafe { _mm512_test_epi64_mask(self.0, self.0) != 0 }
        }
        #[inline(always)]
        fn xor3(self, b: Self, c: Self) -> Self {
            // 0x96: bitwise a ^ b ^ c.
            // SAFETY: AVX-512F register-only op behind the avx512f check.
            unsafe { Avx512(_mm512_ternarylogic_epi64::<0x96>(self.0, b.0, c.0)) }
        }
        #[inline(always)]
        fn maj(self, b: Self, c: Self) -> Self {
            // 0xE8: bitwise majority(a, b, c).
            // SAFETY: AVX-512F register-only op behind the avx512f check.
            unsafe { Avx512(_mm512_ternarylogic_epi64::<0xE8>(self.0, b.0, c.0)) }
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{Avx2, Avx512, Sse2};

#[cfg(target_arch = "aarch64")]
mod arm {
    //! aarch64 NEON implementation (`W = 2`; wider widths compose through
    //! [`super::Pair4`] / [`super::Pair8`]). NEON is baseline on aarch64.
    use super::WordVec;
    use std::arch::aarch64::*;

    /// One 128-bit NEON register carrying a `W = 2` plane.
    #[derive(Clone, Copy)]
    pub(crate) struct Neon(uint64x2_t);

    impl WordVec<2> for Neon {
        #[inline(always)]
        fn zero() -> Self {
            // SAFETY: NEON is baseline on aarch64; register-only, no memory.
            unsafe { Neon(vdupq_n_u64(0)) }
        }
        #[inline(always)]
        fn ones() -> Self {
            // SAFETY: NEON is baseline on aarch64; register-only, no memory.
            unsafe { Neon(vdupq_n_u64(!0)) }
        }
        #[inline(always)]
        fn load(a: &[u64; 2]) -> Self {
            // SAFETY: `a` spans exactly the 16 bytes read and `vld1q` has
            // no alignment requirement beyond u64; NEON is baseline.
            unsafe { Neon(vld1q_u64(a.as_ptr())) }
        }
        #[inline(always)]
        fn store(self, a: &mut [u64; 2]) {
            // SAFETY: `a` spans exactly the 16 bytes written and `vst1q`
            // has no alignment requirement beyond u64; NEON is baseline.
            unsafe { vst1q_u64(a.as_mut_ptr(), self.0) }
        }
        #[inline(always)]
        fn xor(self, o: Self) -> Self {
            // SAFETY: NEON is baseline on aarch64; register-only, no memory.
            unsafe { Neon(veorq_u64(self.0, o.0)) }
        }
        #[inline(always)]
        fn and(self, o: Self) -> Self {
            // SAFETY: NEON is baseline on aarch64; register-only, no memory.
            unsafe { Neon(vandq_u64(self.0, o.0)) }
        }
        #[inline(always)]
        fn or(self, o: Self) -> Self {
            // SAFETY: NEON is baseline on aarch64; register-only, no memory.
            unsafe { Neon(vorrq_u64(self.0, o.0)) }
        }
        #[inline(always)]
        fn not(self) -> Self {
            // SAFETY: NEON is baseline on aarch64; register-only, no memory.
            unsafe { Neon(veorq_u64(self.0, vdupq_n_u64(!0))) }
        }
        #[inline(always)]
        fn any(self) -> bool {
            // SAFETY: NEON is baseline on aarch64; register-only, no memory.
            unsafe { vmaxvq_u32(vreinterpretq_u32_u64(self.0)) != 0 }
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub(crate) use arm::Neon;

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<const W: usize, V: WordVec<W>>() {
        let mut a = [0u64; W];
        let mut b = [0u64; W];
        for w in 0..W {
            a[w] = 0x9e3779b97f4a7c15u64.rotate_left(w as u32 * 7) ^ w as u64;
            b[w] = 0x2545f4914f6cdd1du64.rotate_right(w as u32 * 5);
        }
        let va = V::load(&a);
        let vb = V::load(&b);
        let mut out = [0u64; W];
        va.xor(vb).store(&mut out);
        for w in 0..W {
            assert_eq!(out[w], a[w] ^ b[w], "xor word {w}");
        }
        va.and(vb).store(&mut out);
        for w in 0..W {
            assert_eq!(out[w], a[w] & b[w], "and word {w}");
        }
        va.or(vb).store(&mut out);
        for w in 0..W {
            assert_eq!(out[w], a[w] | b[w], "or word {w}");
        }
        va.not().store(&mut out);
        for w in 0..W {
            assert_eq!(out[w], !a[w], "not word {w}");
        }
        let vc = V::ones();
        va.xor3(vb, vc).store(&mut out);
        for w in 0..W {
            assert_eq!(out[w], a[w] ^ b[w] ^ !0, "xor3 word {w}");
        }
        va.maj(vb, vc).store(&mut out);
        for w in 0..W {
            let (x, y, z) = (a[w], b[w], !0u64);
            assert_eq!(out[w], (x & y) | (x & z) | (y & z), "maj word {w}");
        }
        assert!(va.any());
        assert!(!V::zero().any());
        V::zero().store(&mut out);
        assert_eq!(out, [0u64; W]);
        V::ones().store(&mut out);
        assert_eq!(out, [!0u64; W]);
    }

    #[test]
    fn portable_words_all_widths() {
        exercise::<1, Words<1>>();
        exercise::<2, Words<2>>();
        exercise::<4, Words<4>>();
        exercise::<8, Words<8>>();
        exercise::<4, Pair4<Words<2>>>();
        exercise::<8, Pair8<Words<4>>>();
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_vectors_match_portable_semantics() {
        exercise::<2, Sse2>();
        exercise::<4, Pair4<Sse2>>();
        if std::arch::is_x86_feature_detected!("avx2") {
            exercise::<4, Avx2>();
            exercise::<8, Pair8<Avx2>>();
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            exercise::<8, Avx512>();
        }
    }

    #[cfg(target_arch = "aarch64")]
    #[test]
    fn neon_vectors_match_portable_semantics() {
        exercise::<2, Neon>();
        exercise::<4, Pair4<Neon>>();
        exercise::<8, Pair8<Pair4<Neon>>>();
    }

    #[test]
    fn force_portable_round_trips() {
        assert!(!portable_forced());
        force_portable(true);
        assert_eq!(active_level(), SimdLevel::Portable);
        assert!(portable_forced());
        assert!(!vectorized_width(4));
        force_portable(false);
        assert_eq!(active_level(), detected_level());
    }

    #[test]
    fn level_names_are_stable() {
        for (level, name) in [
            (SimdLevel::Portable, "portable"),
            (SimdLevel::Sse2, "sse2"),
            (SimdLevel::Avx2, "avx2"),
            (SimdLevel::Avx512, "avx512"),
            (SimdLevel::Neon, "neon"),
        ] {
            assert_eq!(level.name(), name);
        }
    }
}
