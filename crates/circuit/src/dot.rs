//! Graphviz (DOT) export for small circuits.

use crate::{Circuit, Wire};
use std::fmt::Write as _;

impl Circuit {
    /// Renders the circuit in Graphviz DOT format.
    ///
    /// Intended for visualising the *small* circuits produced by the arithmetic lemmas
    /// (a few hundred gates); the matmul circuits are far too large to draw usefully.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
        for i in 0..self.num_inputs {
            let _ = writeln!(out, "  x{i} [shape=box, label=\"x{i}\"];");
        }
        let uses_one = self
            .gates
            .iter()
            .flat_map(|g| g.inputs())
            .any(|(w, _)| w.is_const())
            || self.outputs.iter().any(|w| w.is_const());
        if uses_one {
            let _ = writeln!(out, "  one [shape=box, label=\"1\"];");
        }
        for (idx, gate) in self.gates.iter().enumerate() {
            let _ = writeln!(
                out,
                "  g{idx} [label=\"g{idx}\\n>= {}\"];",
                gate.threshold()
            );
            for &(wire, weight) in gate.inputs() {
                let src = wire_node(wire);
                let _ = writeln!(out, "  {src} -> g{idx} [label=\"{weight}\"];");
            }
        }
        for (k, &w) in self.outputs.iter().enumerate() {
            let src = wire_node(w);
            let _ = writeln!(out, "  out{k} [shape=doublecircle, label=\"out{k}\"];");
            let _ = writeln!(out, "  {src} -> out{k};");
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn wire_node(wire: Wire) -> String {
    match wire {
        Wire::Input(i) => format!("x{i}"),
        Wire::Gate(i) => format!("g{i}"),
        Wire::One => "one".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, Wire};

    #[test]
    fn dot_output_mentions_every_gate_and_output() {
        let mut b = CircuitBuilder::new(2);
        let g0 = b
            .add_gate([(Wire::input(0), 1), (Wire::input(1), 1)], 2)
            .unwrap();
        let g1 = b.add_gate([(g0, -1), (Wire::One, 1)], 1).unwrap();
        b.mark_output(g1);
        let dot = b.build().to_dot("test");
        assert!(dot.contains("digraph \"test\""));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("g0"));
        assert!(dot.contains("g1"));
        assert!(dot.contains("one"));
        assert!(dot.contains("out0"));
        assert!(dot.contains(">= 2"));
    }

    #[test]
    fn dot_omits_constant_node_when_unused() {
        let mut b = CircuitBuilder::new(1);
        let g = b.add_gate([(Wire::input(0), 1)], 1).unwrap();
        b.mark_output(g);
        let dot = b.build().to_dot("no_const");
        assert!(!dot.contains("one [shape=box"));
    }
}
