//! Graphviz (DOT) export for small circuits, in both the builder-friendly
//! gate-list form and the compiled CSR form (with its layer schedule).

use crate::{Circuit, CompiledCircuit, Wire};
use std::fmt::Write as _;

impl Circuit {
    /// Renders the circuit in Graphviz DOT format.
    ///
    /// Intended for visualising the *small* circuits produced by the arithmetic lemmas
    /// (a few hundred gates); the matmul circuits are far too large to draw usefully.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
        for i in 0..self.num_inputs {
            let _ = writeln!(out, "  x{i} [shape=box, label=\"x{i}\"];");
        }
        let uses_one = self
            .gates
            .iter()
            .flat_map(|g| g.inputs())
            .any(|(w, _)| w.is_const())
            || self.outputs.iter().any(|w| w.is_const());
        if uses_one {
            let _ = writeln!(out, "  one [shape=box, label=\"1\"];");
        }
        for (idx, gate) in self.gates.iter().enumerate() {
            let _ = writeln!(
                out,
                "  g{idx} [label=\"g{idx}\\n>= {}\"];",
                gate.threshold()
            );
            for &(wire, weight) in gate.inputs() {
                let src = wire_node(wire);
                let _ = writeln!(out, "  {src} -> g{idx} [label=\"{weight}\"];");
            }
        }
        for (k, &w) in self.outputs.iter().enumerate() {
            let src = wire_node(w);
            let _ = writeln!(out, "  out{k} [shape=doublecircle, label=\"out{k}\"];");
            let _ = writeln!(out, "  {src} -> out{k};");
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn wire_node(wire: Wire) -> String {
    match wire {
        Wire::Input(i) => format!("x{i}"),
        Wire::Gate(i) => format!("g{i}"),
        Wire::One => "one".to_string(),
    }
}

impl CompiledCircuit {
    /// Renders the compiled circuit in Graphviz DOT format, grouping gates
    /// into one cluster per layer of the precomputed schedule.
    ///
    /// Where [`Circuit::to_dot`] draws the pre-compile gate list, this
    /// renderer shows what the execution engine actually runs: slot-encoded
    /// fan-ins, per-gate thresholds, and the depth layers the parallel and
    /// bit-sliced evaluators sweep in order.
    pub fn to_dot(&self, name: &str) -> String {
        let num_inputs = self.num_inputs();
        let slot_node = |slot: usize| -> String {
            if slot == 0 {
                "one".to_string()
            } else if slot <= num_inputs {
                format!("x{}", slot - 1)
            } else {
                // Slots are internally (depth, class)-sorted; render the
                // original gate id.
                format!("g{}", self.gate_of_slot(slot).expect("gate slot"))
            }
        };
        let uses_one = (0..self.num_gates()).any(|g| self.fan_in(g).0.contains(&0))
            || (0..self.num_outputs()).any(|i| self.output_slot(i) == 0);

        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
        for i in 0..num_inputs {
            let _ = writeln!(out, "  x{i} [shape=box, label=\"x{i}\"];");
        }
        if uses_one {
            let _ = writeln!(out, "  one [shape=box, label=\"1\"];");
        }
        // One cluster per depth layer of the schedule: these are the gates
        // the layer-parallel evaluator settles in a single sweep.
        for d in 0..self.depth() as usize {
            let _ = writeln!(out, "  subgraph cluster_layer{d} {{");
            let _ = writeln!(out, "    label=\"layer {}\";", d + 1);
            let _ = writeln!(out, "    style=dashed;");
            for &g in self.layer(d) {
                let _ = writeln!(
                    out,
                    "    g{g} [label=\"g{g}\\n>= {}\"];",
                    self.threshold(g as usize)
                );
            }
            let _ = writeln!(out, "  }}");
        }
        for g in 0..self.num_gates() {
            let (slots, weights) = self.fan_in(g);
            for (&slot, &weight) in slots.iter().zip(weights) {
                let src = slot_node(slot as usize);
                let _ = writeln!(out, "  {src} -> g{g} [label=\"{weight}\"];");
            }
        }
        for k in 0..self.num_outputs() {
            let src = slot_node(self.output_slot(k));
            let _ = writeln!(out, "  out{k} [shape=doublecircle, label=\"out{k}\"];");
            let _ = writeln!(out, "  {src} -> out{k};");
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, Wire};

    #[test]
    fn dot_output_mentions_every_gate_and_output() {
        let mut b = CircuitBuilder::new(2);
        let g0 = b
            .add_gate([(Wire::input(0), 1), (Wire::input(1), 1)], 2)
            .unwrap();
        let g1 = b.add_gate([(g0, -1), (Wire::One, 1)], 1).unwrap();
        b.mark_output(g1);
        let dot = b.build().to_dot("test");
        assert!(dot.contains("digraph \"test\""));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("g0"));
        assert!(dot.contains("g1"));
        assert!(dot.contains("one"));
        assert!(dot.contains("out0"));
        assert!(dot.contains(">= 2"));
    }

    #[test]
    fn dot_omits_constant_node_when_unused() {
        let mut b = CircuitBuilder::new(1);
        let g = b.add_gate([(Wire::input(0), 1)], 1).unwrap();
        b.mark_output(g);
        let dot = b.build().to_dot("no_const");
        assert!(!dot.contains("one [shape=box"));
    }

    #[test]
    fn compiled_dot_groups_gates_by_layer() {
        let mut b = CircuitBuilder::new(2);
        let g0 = b
            .add_gate([(Wire::input(0), 1), (Wire::input(1), 1)], 2)
            .unwrap();
        let g1 = b.add_gate([(g0, -1), (Wire::One, 1)], 1).unwrap();
        let g2 = b.add_gate([(Wire::input(0), 2), (g1, 3)], 4).unwrap();
        b.mark_output(g2);
        let cc = b.build().compile().unwrap();
        let dot = cc.to_dot("compiled");
        assert!(dot.contains("digraph \"compiled\""));
        assert!(dot.contains("subgraph cluster_layer0"));
        assert!(dot.contains("subgraph cluster_layer2"));
        assert!(dot.contains("label=\"layer 3\""));
        assert!(dot.contains("g1 -> g2 [label=\"3\"]"));
        assert!(dot.contains("one -> g1 [label=\"1\"]"));
        assert!(dot.contains("g2 -> out0"));
        assert_eq!(dot.matches("subgraph").count(), cc.depth() as usize);
    }
}
