//! Compile-time weight canonicalization: shared-magnitude (GCD) factoring
//! and canonical signed-digit (CSD) bit-edge recoding.
//!
//! A threshold gate's behaviour is invariant under two rewrites the batch
//! kernel can cash in on:
//!
//! * **GCD factoring.** If every weight magnitude shares a factor `g > 1`,
//!   then `Σ wᵢ·yᵢ ≥ t  ⟺  Σ (wᵢ/g)·yᵢ ≥ ⌈t/g⌉` (the left sum is an
//!   integer multiple of `g`). Dividing through can *reclassify* the gate —
//!   `{+5, −5, +5}` becomes the majority-style `{+1, −1, +1}` (Unit),
//!   `{+6, −12}` becomes `{+1, −2}` (Pow2) — moving it from the bit-edge
//!   loops onto a strictly faster kernel segment, and always shrinks the
//!   plane reach of whatever class remains.
//! * **CSD recoding.** A `General` weight is evaluated as one plane
//!   addition per *digit* of its magnitude. Binary digits (one per set bit)
//!   are not minimal: the canonical signed-digit (non-adjacent) form of,
//!   say, `7 = 8 − 1` has two digits where binary `111` has three. Since
//!   the kernel already keeps separate positive and negative accumulator
//!   planes, a negative digit is free to represent — so every weight is
//!   recoded to whichever of NAF/binary has strictly fewer digits.
//!
//! Both rewrites preserve the gate's output on every input, therefore also
//! the circuit's observable firing counts (no gates are added, removed, or
//! reordered) — the depth–energy measures of Uchizawa et al. survive
//! canonicalization exactly. The differential proptests in
//! `tests/proptest_canon.rs` pin this against an independent gate-list
//! oracle across every evaluator.
//!
//! Canonicalization runs inside [`Circuit::compile`](crate::Circuit):
//! classify (pre) → factor → reclassify (post) → renumber, so the class
//! segments the kernel walks reflect the *canonical* weights. The pre/post
//! class mixes are both observable ([`crate::CircuitStats`]).

/// Version of the canonicalization rules baked into compiled circuits.
///
/// Consumers that fingerprint compiled circuits (the runtime's auto-tuner
/// cache key) mix this in, so persisted decisions made under older rewrite
/// rules are invalidated instead of silently reused. Bump whenever the
/// rewrites change the compiled form for some circuit.
pub const CANON_VERSION: u32 = 1;

/// Greatest common divisor (Euclid; `gcd(0, x) = x`).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The canonical (GCD-factored) form of one gate, or `None` if the gate is
/// already canonical (no shared magnitude factor > 1).
///
/// When `Some((weights, threshold))` is returned, the rewritten gate fires
/// on exactly the same input sets as the original: all weight magnitudes
/// have been divided by their collective GCD `g` and the threshold replaced
/// by `⌈t/g⌉` (exact because the weighted sum is always a multiple of `g`).
/// Signs are preserved; zero weights stay zero.
pub fn canonical_gate(weights: &[i64], threshold: i64) -> Option<(Vec<i64>, i64)> {
    let g = weights
        .iter()
        .fold(0u64, |acc, w| gcd(acc, w.unsigned_abs()));
    if g <= 1 {
        return None;
    }
    let gw = g as i128;
    // lint:allow(narrowing-cast): |w|/g ≤ |w|, so the quotient fits i64
    let canon = weights.iter().map(|&w| ((w as i128) / gw) as i64).collect();
    // ⌈t/g⌉ in exact integer arithmetic (i128 covers i64::MIN).
    let q = (threshold as i128).div_euclid(gw);
    let r = (threshold as i128).rem_euclid(gw);
    // lint:allow(narrowing-cast): g ≥ 2, so |⌈t/g⌉| ≤ |t| fits i64
    let t = (q + (r != 0) as i128) as i64;
    Some((canon, t))
}

/// One signed digit of a weight-magnitude decomposition: the magnitude
/// contributes `±2^shift`.
pub(crate) type Digit = (u8, bool);

/// Appends the plain binary digits of `mag` (one positive digit per set
/// bit) to `out`.
pub(crate) fn binary_digits(mag: u64, out: &mut Vec<Digit>) {
    let mut bits = mag;
    while bits != 0 {
        // lint:allow(narrowing-cast): trailing_zeros of a nonzero u64 is ≤ 63
        out.push((bits.trailing_zeros() as u8, false));
        bits &= bits - 1;
    }
}

/// Appends the non-adjacent-form (canonical signed-digit) digits of `mag`
/// to `out`. The NAF of `n ≤ 2^63` has digits at shifts `≤ 63` only, and
/// never more digits than the binary form.
pub(crate) fn naf_digits(mag: u64, out: &mut Vec<Digit>) {
    // u128 working copy: the +1 rounding below may momentarily exceed u64
    // for magnitudes near 2^63.
    let mut n = mag as u128;
    let mut shift = 0u8;
    while n != 0 {
        if n & 1 == 1 {
            if n & 3 == 3 {
                // Digit −1: add one and let the carry create a run of zeros.
                out.push((shift, true));
                n += 1;
            } else {
                out.push((shift, false));
                n -= 1;
            }
        }
        n >>= 1;
        shift += 1;
    }
}

/// Appends the cheaper of the binary and NAF decompositions of `mag`: NAF
/// only when it has *strictly* fewer digits (ties keep binary, whose digit
/// magnitudes sum to exactly `mag` and therefore reach fewer planes).
pub(crate) fn weight_digits(mag: u64, out: &mut Vec<Digit>) {
    let start = out.len();
    naf_digits(mag, out);
    if (out.len() - start) >= mag.count_ones() as usize {
        out.truncate(start);
        binary_digits(mag, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digit_value(digits: &[Digit]) -> i128 {
        digits
            .iter()
            .map(|&(shift, neg)| {
                let v = 1i128 << shift;
                if neg {
                    -v
                } else {
                    v
                }
            })
            .sum()
    }

    #[test]
    fn gcd_factoring_divides_through_and_ceils_the_threshold() {
        let (w, t) = canonical_gate(&[6, -9, 12], 7).unwrap();
        assert_eq!(w, vec![2, -3, 4]);
        assert_eq!(t, 3); // ⌈7/3⌉
        let (w, t) = canonical_gate(&[5, -5, 5], 10).unwrap();
        assert_eq!(w, vec![1, -1, 1]);
        assert_eq!(t, 2);
        // Negative thresholds ceil towards zero.
        let (w, t) = canonical_gate(&[4, 8], -7).unwrap();
        assert_eq!(w, vec![1, 2]);
        assert_eq!(t, -1); // ⌈−7/4⌉
        let (_, t) = canonical_gate(&[4, 8], -8).unwrap();
        assert_eq!(t, -2);
    }

    #[test]
    fn already_canonical_gates_are_untouched() {
        assert!(canonical_gate(&[3, 5, 7], 8).is_none());
        assert!(canonical_gate(&[1, -1], 1).is_none());
        assert!(canonical_gate(&[], 5).is_none());
        assert!(canonical_gate(&[0, 0], 5).is_none());
        // A zero weight is ignored by the GCD but divided along.
        let (w, t) = canonical_gate(&[0, 6, -4], 3).unwrap();
        assert_eq!(w, vec![0, 3, -2]);
        assert_eq!(t, 2);
    }

    #[test]
    fn extreme_magnitudes_factor_exactly() {
        // i64::MIN has magnitude 2^63; gcd with itself is 2^63.
        let (w, t) = canonical_gate(&[i64::MIN, i64::MIN], i64::MIN).unwrap();
        assert_eq!(w, vec![-1, -1]);
        assert_eq!(t, -1);
        let (w, t) = canonical_gate(&[i64::MIN, 2], 5).unwrap();
        assert_eq!(w, vec![i64::MIN / 2, 1]);
        assert_eq!(t, 3);
        // gcd(i64::MAX, i64::MAX - 2) = 1 for the odd i64::MAX.
        assert!(canonical_gate(&[i64::MAX, i64::MAX - 2], 1).is_none());
    }

    #[test]
    fn naf_digits_reconstruct_and_are_nonadjacent() {
        for mag in (0u64..4096).chain([
            u64::MAX >> 1,
            (u64::MAX >> 1) + 1, // 2^63
            0x5555_5555_5555_5555,
            0x7FFF_FFFF_FFFF_FFFD,
        ]) {
            let mut digits = Vec::new();
            naf_digits(mag, &mut digits);
            assert_eq!(digit_value(&digits), mag as i128, "mag {mag}");
            assert!(
                digits.iter().all(|&(s, _)| s <= 63),
                "mag {mag} shift range"
            );
            // Non-adjacency: consecutive digits differ by >= 2 shifts.
            for pair in digits.windows(2) {
                assert!(pair[1].0 >= pair[0].0 + 2, "mag {mag} adjacency");
            }
            assert!(
                digits.len() <= mag.count_ones() as usize || mag.count_ones() <= 1,
                "mag {mag}: NAF ({}) longer than binary ({})",
                digits.len(),
                mag.count_ones()
            );
        }
    }

    #[test]
    fn weight_digits_prefer_strictly_shorter_naf() {
        // 7 = 8 - 1: NAF wins (2 digits vs 3).
        let mut d = Vec::new();
        weight_digits(7, &mut d);
        assert_eq!(d, vec![(0, true), (3, false)]);
        // 5 = 4 + 1 either way: binary kept.
        d.clear();
        weight_digits(5, &mut d);
        assert_eq!(d, vec![(0, false), (2, false)]);
        // Powers of two are single digits in both forms.
        d.clear();
        weight_digits(1 << 40, &mut d);
        assert_eq!(d, vec![(40, false)]);
        d.clear();
        weight_digits(0, &mut d);
        assert!(d.is_empty());
        // Reconstruction holds for a spread of magnitudes.
        for mag in [3u64, 47, 0xFFFF, 0b1011011101, u64::MAX >> 1] {
            d.clear();
            weight_digits(mag, &mut d);
            assert_eq!(digit_value(&d), mag as i128, "mag {mag}");
        }
    }
}
