//! The linear threshold gate.

use crate::Wire;
use serde::{Deserialize, Serialize};

/// A linear threshold gate.
///
/// The gate computes the Boolean function
/// `fire(y) = [ Σ_i w_i · y_i ≥ t ]`
/// over the bits carried by its input wires, where the integer weights `w_i` and the
/// integer threshold `t` are fixed at construction time (they are *parameters of the
/// circuit*, not data).
///
/// This is exactly the McCulloch–Pitts neuron model used by the paper; rational weights
/// can always be scaled to integers, so integer weights lose no generality.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ThresholdGate {
    /// Fan-in: `(wire, weight)` pairs.  Wires are unique within a gate.
    pub(crate) inputs: Vec<(Wire, i64)>,
    /// The firing threshold `t`.
    pub(crate) threshold: i64,
}

impl ThresholdGate {
    /// Creates a gate from its fan-in list and threshold.
    ///
    /// This does not check wire validity against a circuit; use
    /// [`CircuitBuilder::add_gate`](crate::CircuitBuilder::add_gate) for checked
    /// construction.
    pub fn new(inputs: Vec<(Wire, i64)>, threshold: i64) -> Self {
        ThresholdGate { inputs, threshold }
    }

    /// The gate's fan-in list as `(wire, weight)` pairs.
    #[inline]
    pub fn inputs(&self) -> &[(Wire, i64)] {
        &self.inputs
    }

    /// The gate's threshold `t`.
    #[inline]
    pub fn threshold(&self) -> i64 {
        self.threshold
    }

    /// Number of inputs (the gate's fan-in).
    #[inline]
    pub fn fan_in(&self) -> usize {
        self.inputs.len()
    }

    /// The largest absolute weight used by this gate.
    ///
    /// Returned as `u64` so the weight `i64::MIN` (absolute value `2^63`) is
    /// reported exactly instead of being clamped.
    #[inline]
    pub fn max_abs_weight(&self) -> u64 {
        self.inputs
            .iter()
            .map(|(_, w)| w.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the gate given a resolver from wires to bit values.
    ///
    /// Returns `None` on (extremely unlikely) accumulator overflow.
    #[inline]
    pub fn fire_with<F>(&self, mut value_of: F) -> Option<bool>
    where
        F: FnMut(Wire) -> bool,
    {
        let mut sum: i128 = 0;
        for &(wire, weight) in &self.inputs {
            if value_of(wire) {
                sum = sum.checked_add(weight as i128)?;
            }
        }
        Some(sum >= self.threshold as i128)
    }

    /// The sum of all positive weights (the maximum achievable weighted sum).
    pub fn max_sum(&self) -> i128 {
        self.inputs
            .iter()
            .map(|&(_, w)| if w > 0 { w as i128 } else { 0 })
            .sum()
    }

    /// The sum of all negative weights (the minimum achievable weighted sum).
    pub fn min_sum(&self) -> i128 {
        self.inputs
            .iter()
            .map(|&(_, w)| if w < 0 { w as i128 } else { 0 })
            .sum()
    }

    /// Returns `true` if the gate's output is constant (it either always fires or never
    /// fires, regardless of its inputs).
    pub fn is_constant(&self) -> bool {
        self.min_sum() >= self.threshold as i128 || self.max_sum() < self.threshold as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and2() -> ThresholdGate {
        ThresholdGate::new(vec![(Wire::input(0), 1), (Wire::input(1), 1)], 2)
    }

    #[test]
    fn and_gate_truth_table() {
        let g = and2();
        let cases = [
            ([false, false], false),
            ([false, true], false),
            ([true, false], false),
            ([true, true], true),
        ];
        for (bits, expected) in cases {
            let out = g
                .fire_with(|w| bits[w.as_input().unwrap()])
                .expect("no overflow");
            assert_eq!(out, expected, "inputs {bits:?}");
        }
    }

    #[test]
    fn or_and_majority_gates() {
        let or = ThresholdGate::new(vec![(Wire::input(0), 1), (Wire::input(1), 1)], 1);
        assert!(or.fire_with(|w| w == Wire::input(0)).unwrap());
        assert!(!or.fire_with(|_| false).unwrap());

        let maj3 = ThresholdGate::new(
            vec![
                (Wire::input(0), 1),
                (Wire::input(1), 1),
                (Wire::input(2), 1),
            ],
            2,
        );
        assert!(maj3.fire_with(|w| w.as_input().unwrap() < 2).unwrap());
        assert!(!maj3.fire_with(|w| w.as_input().unwrap() < 1).unwrap());
    }

    #[test]
    fn negative_weights_model_not() {
        // NOT(x) = [ -x >= 0 ]
        let not = ThresholdGate::new(vec![(Wire::input(0), -1)], 0);
        assert!(not.fire_with(|_| false).unwrap());
        assert!(!not.fire_with(|_| true).unwrap());
    }

    #[test]
    fn accessors_and_bounds() {
        let g = ThresholdGate::new(vec![(Wire::input(0), 3), (Wire::input(1), -5)], 2);
        assert_eq!(g.fan_in(), 2);
        assert_eq!(g.threshold(), 2);
        assert_eq!(g.max_abs_weight(), 5);
        assert_eq!(g.max_sum(), 3);
        assert_eq!(g.min_sum(), -5);
        assert!(!g.is_constant());
    }

    #[test]
    fn max_abs_weight_reports_i64_min_exactly() {
        let g = ThresholdGate::new(vec![(Wire::input(0), i64::MIN)], 0);
        assert_eq!(g.max_abs_weight(), 1u64 << 63);
        let g = ThresholdGate::new(vec![(Wire::input(0), i64::MIN), (Wire::input(1), 7)], 0);
        assert_eq!(g.max_abs_weight(), 1u64 << 63);
    }

    #[test]
    fn constant_gate_detection() {
        // Threshold lower than any achievable sum: always fires.
        let g = ThresholdGate::new(vec![(Wire::input(0), 1)], -1);
        assert!(g.is_constant());
        // Threshold above max sum: never fires.
        let g = ThresholdGate::new(vec![(Wire::input(0), 1)], 2);
        assert!(g.is_constant());
        // Reachable threshold: not constant.
        let g = ThresholdGate::new(vec![(Wire::input(0), 1)], 1);
        assert!(!g.is_constant());
    }
}
