//! Independent static verification of circuits and their compiled CSR form.
//!
//! The compile pipeline (`compiled.rs`) classifies, canonicalizes, renumbers
//! and lowers a [`Circuit`] in one tightly-coupled pass. Its correctness was
//! previously backed by sampled differential tests alone; this module adds a
//! *translation-validation* layer in the tradition of Pnueli/Necula: instead
//! of proving the compiler correct once, every compiled artifact is checked
//! against a set of machine-verifiable rules after the fact.
//!
//! Three families of rules live here:
//!
//! 1. **Structural invariants** ([`verify_compiled`]) — CSR well-formedness
//!    (monotone row offsets, in-bounds slot ids, no self or forward edges
//!    violating the layer schedule), the (depth, class)-contiguous internal
//!    renumbering with a bijective `perm`/`inv` pair, per-class segment
//!    tables exactly matching what the batch kernel dispatches, and
//!    plane-budget accounting reconciling bit-edge counts against the cost
//!    model's `class_plane_ops`.
//! 2. **Canonicalization certificates** ([`verify_against`]) — for every
//!    gate, the GCD factor and signed-digit recoding applied by `canon.rs`
//!    are re-derived *algebraically* in `i128` from the raw gate: the factor
//!    must reproduce every raw weight exactly, the factored weights must be
//!    coprime (maximality), the threshold must be the ceiling quotient, and
//!    each bit-edge run must sum back to its canonical weight. Together
//!    these prove output equivalence per gate — `Σwᵢyᵢ ≥ t` iff
//!    `Σ(wᵢ/g)yᵢ ≥ ⌈t/g⌉` for every 0/1 assignment `y`, because the weighted
//!    sums are integers — rather than equivalence on sampled inputs only.
//! 3. **Paper-bound certification** ([`PaperBound`]) — constructors attach
//!    closed-form depth/size bounds from the source paper's theorems, and
//!    [`PaperBound::certify`] asserts them against the measured artifact.
//!
//! Everything is reported through one typed [`VerifyReport`] shared with the
//! pre-compile checks of [`Circuit::validate`], so pre- and post-compile
//! findings speak the same [`FindingKind`]/[`Severity`] vocabulary.

use crate::canon;
use crate::compiled::{CompiledCircuit, GateClass, BATCH_LANES, WIDE_GATE};
use crate::{Circuit, Wire};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A violated invariant: the artifact must not be evaluated.
    Error,
    /// A quality observation (dead or constant gates); the circuit is valid.
    Advice,
}

/// The typed vocabulary of everything the verifier can report.
///
/// Each variant corresponds to exactly one rule; the mutation harness in the
/// test module proves each rule fires on a correspondingly corrupted IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A wire references a nonexistent input or a not-yet-defined gate.
    DanglingWire,
    /// A gate with no fan-in edges at all.
    EmptyFanIn,
    /// A CSR array has the wrong length or a wrong terminal value.
    CsrShape,
    /// Row offsets (`offsets` or `bit_offsets`) are not monotone.
    OffsetMonotonicity,
    /// A fan-in or bit-edge slot id is outside the slot space.
    WireBounds,
    /// A fan-in edge reads a gate in the same or a later layer (self or
    /// forward edge): the layer schedule would evaluate it too early.
    EdgeOrder,
    /// The non-negative-first edge split disagrees with `pos_counts`.
    PosCountSplit,
    /// `perm`/`inv` are not inverse bijections over the gate ids.
    Renumbering,
    /// Layer ranges do not partition the gates, or the depth-grouped
    /// schedule disagrees with the recorded per-gate depths.
    LayerSchedule,
    /// Gates inside a layer are not sorted by (class, original id), so the
    /// class segments the kernel dispatches would not be maximal runs.
    InternalOrder,
    /// The per-class segment table does not match the recomputed maximal
    /// same-class runs.
    SegmentTable,
    /// A gate's stored [`GateClass`] disagrees with reclassification from
    /// its compiled weights and plane budget.
    ClassLabel,
    /// A per-class census (`class_counts` or `class_counts_pre`) is wrong.
    ClassCensus,
    /// A gate's `batch_planes` entry disagrees with the plane requirement
    /// recomputed from its bit-edge reach and threshold.
    PlaneBudget,
    /// `class_plane_ops` does not reconcile with the per-gate edge and
    /// bit-edge counts.
    PlaneOps,
    /// A gate's narrow (i64-safe) flag disagrees with its weight sums.
    NarrowFlag,
    /// An output slot is out of bounds or does not match the source wire.
    OutputSlot,
    /// The GCD rewrite certificate failed: no single integer factor maps
    /// the canonical weights back onto the raw weights, or the canonical
    /// weights are not coprime (the factoring was not maximal).
    GcdCertificate,
    /// The canonical threshold is not the ceiling quotient `⌈t/g⌉` of the
    /// raw threshold by the certified GCD factor.
    ThresholdCertificate,
    /// A bit-edge run does not reproduce the signed-digit decomposition of
    /// its canonical weight, or its digits do not sum back to the weight.
    BitEdgeCertificate,
    /// The canonicalized-gate counter disagrees with the recount.
    CanonCount,
    /// A compiled artifact disagrees with its source circuit (gate/input/
    /// edge counts, recomputed depths, or fan-in wiring).
    SourceMismatch,
    /// Measured depth violates the constructor's paper bound.
    DepthBound,
    /// Measured gate count violates the constructor's paper bound.
    GateBound,
    /// Measured edge count violates the constructor's paper bound.
    EdgeBound,
    /// A gate whose output is provably constant (advice).
    ConstantGate,
    /// A gate not reachable backwards from any designated output (advice).
    DeadGate,
}

impl FindingKind {
    /// Stable lowercase name used in rendered reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::DanglingWire => "dangling-wire",
            FindingKind::EmptyFanIn => "empty-fan-in",
            FindingKind::CsrShape => "csr-shape",
            FindingKind::OffsetMonotonicity => "offset-monotonicity",
            FindingKind::WireBounds => "wire-bounds",
            FindingKind::EdgeOrder => "edge-order",
            FindingKind::PosCountSplit => "pos-count-split",
            FindingKind::Renumbering => "renumbering",
            FindingKind::LayerSchedule => "layer-schedule",
            FindingKind::InternalOrder => "internal-order",
            FindingKind::SegmentTable => "segment-table",
            FindingKind::ClassLabel => "class-label",
            FindingKind::ClassCensus => "class-census",
            FindingKind::PlaneBudget => "plane-budget",
            FindingKind::PlaneOps => "plane-ops",
            FindingKind::NarrowFlag => "narrow-flag",
            FindingKind::OutputSlot => "output-slot",
            FindingKind::GcdCertificate => "gcd-certificate",
            FindingKind::ThresholdCertificate => "threshold-certificate",
            FindingKind::BitEdgeCertificate => "bit-edge-certificate",
            FindingKind::CanonCount => "canon-count",
            FindingKind::SourceMismatch => "source-mismatch",
            FindingKind::DepthBound => "depth-bound",
            FindingKind::GateBound => "gate-bound",
            FindingKind::EdgeBound => "edge-bound",
            FindingKind::ConstantGate => "constant-gate",
            FindingKind::DeadGate => "dead-gate",
        }
    }
}

/// One verification finding: a rule, its severity, the gate it concerns
/// (original gate id, when applicable) and a human-readable message.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub kind: FindingKind,
    /// Whether this invalidates the artifact or is advisory.
    pub severity: Severity,
    /// Original gate id the finding concerns, if gate-specific.
    pub gate: Option<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Advice => "advice",
        };
        match self.gate {
            Some(g) => write!(
                f,
                "{sev}[{}] gate {g}: {}",
                self.kind.as_str(),
                self.message
            ),
            None => write!(f, "{sev}[{}]: {}", self.kind.as_str(), self.message),
        }
    }
}

/// The result of verifying a circuit and/or its compiled form.
///
/// This is the shared report type of [`Circuit::validate`] (pre-compile),
/// [`verify_compiled`]/[`verify_against`] (post-compile) and
/// [`PaperBound::certify`]; all speak the same [`FindingKind`] vocabulary.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Every finding, in rule order.
    pub findings: Vec<Finding>,
}

impl VerifyReport {
    fn error(&mut self, kind: FindingKind, gate: Option<usize>, message: String) {
        self.findings.push(Finding {
            kind,
            severity: Severity::Error,
            gate,
            message,
        });
    }

    fn advice(&mut self, kind: FindingKind, gate: Option<usize>, message: String) {
        self.findings.push(Finding {
            kind,
            severity: Severity::Advice,
            gate,
            message,
        });
    }

    /// `true` when no [`Severity::Error`] finding was recorded (advisory
    /// findings — constant or dead gates — do not make a circuit invalid).
    pub fn is_valid(&self) -> bool {
        !self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// `true` if any finding of `kind` was recorded.
    pub fn has(&self, kind: FindingKind) -> bool {
        self.findings.iter().any(|f| f.kind == kind)
    }

    /// Original ids of gates whose output is provably constant.
    pub fn constant_gates(&self) -> Vec<usize> {
        self.gates_of(FindingKind::ConstantGate)
    }

    /// Original ids of gates unreachable from every designated output.
    pub fn dead_gates(&self) -> Vec<usize> {
        self.gates_of(FindingKind::DeadGate)
    }

    fn gates_of(&self, kind: FindingKind) -> Vec<usize> {
        self.findings
            .iter()
            .filter(|f| f.kind == kind)
            .filter_map(|f| f.gate)
            .collect()
    }

    /// Appends every finding of `other` to this report.
    pub fn merge(&mut self, other: VerifyReport) {
        self.findings.extend(other.findings);
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "verified: no findings");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} finding(s), {} error(s)",
            self.findings.len(),
            self.error_count()
        )
    }
}

/// Planes so that POS, NEG and POS − NEG − t all fit a signed `planes`-bit
/// two's-complement integer, given the reach. Independent re-statement of
/// the compile-time budget (`compiled.rs` keeps its own copy on purpose:
/// the verifier must not share the code it checks).
fn planes_for(reach: i128) -> u8 {
    let needed = 128 - (reach + 1).leading_zeros() + 2;
    if (needed as usize) < BATCH_LANES {
        needed as u8
    } else {
        WIDE_GATE
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn slot_of(wire: Wire, num_inputs: usize, perm: &[u32]) -> Option<usize> {
    match wire {
        Wire::One => Some(0),
        Wire::Input(i) => Some(1 + i as usize),
        Wire::Gate(g) => perm.get(g as usize).map(|&p| 1 + num_inputs + p as usize),
    }
}

/// Verifies every structural invariant of a compiled circuit on its own —
/// no source [`Circuit`] required. See the module docs for the rule list.
///
/// The verifier never panics on corrupt input: shape violations are
/// recorded and dependent checks are skipped.
pub fn verify_compiled(c: &CompiledCircuit) -> VerifyReport {
    let mut r = VerifyReport::default();
    verify_compiled_into(c, &mut r);
    r
}

/// Returns `false` when the artifact is too structurally broken for the
/// per-gate cross-checks of [`verify_against`] to chase its indices.
fn verify_compiled_into(c: &CompiledCircuit, r: &mut VerifyReport) -> bool {
    let g_count = c.classes.len();
    let slots = 1 + c.num_inputs + g_count;

    // ── Array shapes. Everything after this section may index freely up to
    // `g_count`, but offset *values* are still validated before use.
    let shape_checks = [
        (c.offsets.len() == g_count + 1, "offsets length"),
        (c.bit_offsets.len() == g_count + 1, "bit_offsets length"),
        (c.wires.len() == c.weights.len(), "wires/weights parallel"),
        (
            c.bit_slots.len() == c.bit_shifts.len(),
            "bit_slots/bit_shifts parallel",
        ),
        (c.pos_counts.len() == g_count, "pos_counts length"),
        (c.thresholds.len() == g_count, "thresholds length"),
        (c.narrow.len() == g_count, "narrow length"),
        (c.batch_planes.len() == g_count, "batch_planes length"),
        (c.depths.len() == g_count, "depths length"),
        (c.schedule.len() == g_count, "schedule length"),
        (c.perm.len() == g_count, "perm length"),
        (c.inv.len() == g_count, "inv length"),
    ];
    let mut shapes_ok = true;
    for (ok, what) in shape_checks {
        if !ok {
            r.error(FindingKind::CsrShape, None, format!("bad {what}"));
            shapes_ok = false;
        }
    }
    if !shapes_ok {
        return false;
    }
    if c.offsets.first() != Some(&0) || *c.offsets.last().unwrap() as usize != c.wires.len() {
        r.error(
            FindingKind::CsrShape,
            None,
            format!("offsets must run from 0 to wires.len()={}", c.wires.len()),
        );
        return false;
    }
    if c.bit_offsets.first() != Some(&0)
        || *c.bit_offsets.last().unwrap() as usize != c.bit_slots.len()
    {
        r.error(
            FindingKind::CsrShape,
            None,
            format!(
                "bit_offsets must run from 0 to bit_slots.len()={}",
                c.bit_slots.len()
            ),
        );
        return false;
    }

    // ── perm/inv bijection.
    let mut perm_ok = true;
    let mut seen = vec![false; g_count];
    for (internal, &orig) in c.inv.iter().enumerate() {
        let o = orig as usize;
        if o >= g_count || seen[o] {
            r.error(
                FindingKind::Renumbering,
                Some(o.min(g_count.saturating_sub(1))),
                format!("inv[{internal}]={o} is out of range or repeated"),
            );
            perm_ok = false;
            continue;
        }
        seen[o] = true;
        if c.perm[o] as usize != internal {
            r.error(
                FindingKind::Renumbering,
                Some(o),
                format!(
                    "perm[{o}]={} does not invert inv[{internal}]={o}",
                    c.perm[o]
                ),
            );
            perm_ok = false;
        }
    }

    // ── Layer ranges partition [0, g_count) and the schedule groups the
    // ORIGINAL ids by recorded depth, ascending inside each layer.
    let mut layers_ok = true;
    let mut cursor = 0u32;
    for (d, &(lo, hi)) in c.layer_ranges.iter().enumerate() {
        if lo != cursor || hi <= lo || hi as usize > g_count {
            r.error(
                FindingKind::LayerSchedule,
                None,
                format!("layer {d} range {lo}..{hi} does not continue the partition"),
            );
            layers_ok = false;
            break;
        }
        cursor = hi;
    }
    if layers_ok && cursor as usize != g_count {
        r.error(
            FindingKind::LayerSchedule,
            None,
            format!("layer ranges cover {cursor} of {g_count} gates"),
        );
        layers_ok = false;
    }
    if layers_ok {
        let mut sched_seen = vec![false; g_count];
        for (d, &(lo, hi)) in c.layer_ranges.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &orig in &c.schedule[lo as usize..hi as usize] {
                let o = orig as usize;
                if o >= g_count || sched_seen[o] {
                    r.error(
                        FindingKind::LayerSchedule,
                        None,
                        format!("schedule entry {o} out of range or repeated in layer {d}"),
                    );
                    layers_ok = false;
                    continue;
                }
                sched_seen[o] = true;
                if c.depths[o] as usize != d + 1 {
                    r.error(
                        FindingKind::LayerSchedule,
                        Some(o),
                        format!(
                            "scheduled in layer {d} but recorded depth is {}",
                            c.depths[o]
                        ),
                    );
                    layers_ok = false;
                }
                if let Some(p) = prev {
                    if orig <= p {
                        r.error(
                            FindingKind::LayerSchedule,
                            Some(o),
                            format!("layer {d} schedule not ascending ({p} then {orig})"),
                        );
                        layers_ok = false;
                    }
                }
                prev = Some(orig);
            }
        }
    }
    if !(perm_ok && layers_ok) {
        return false;
    }

    // Layer of each internal id, and the depth-major cross-check: internal
    // gate g in layer d must be an original gate of depth d + 1.
    let mut internal_layer = vec![0u32; g_count];
    for (d, &(lo, hi)) in c.layer_ranges.iter().enumerate() {
        // The index addresses two arrays (`internal_layer`, `c.inv`); a
        // range loop reads better than a zipped iterator chain here.
        #[allow(clippy::needless_range_loop)]
        for g in lo as usize..hi as usize {
            internal_layer[g] = d as u32;
            let orig = c.inv[g] as usize;
            if c.depths[orig] as usize != d + 1 {
                r.error(
                    FindingKind::LayerSchedule,
                    Some(orig),
                    format!(
                        "internal id {g} sits in layer {d} but has depth {}",
                        c.depths[orig]
                    ),
                );
            }
        }
        // Within a layer the internal order must be (class, original id)
        // ascending: that is what makes the class segments maximal runs.
        for g in lo as usize + 1..hi as usize {
            let a = (c.classes[g - 1].index(), c.inv[g - 1]);
            let b = (c.classes[g].index(), c.inv[g]);
            if a >= b {
                r.error(
                    FindingKind::InternalOrder,
                    Some(c.inv[g] as usize),
                    format!("layer {d} not sorted by (class, original id) at internal id {g}"),
                );
            }
        }
    }

    // ── Per-gate pass: offsets, edge bounds and ordering, pos split,
    // class label, plane budget, bit-edge reproduction, narrow flag.
    let mut class_counts = [0usize; 3];
    let mut plane_ops = [0u64; 3];
    let mut dbuf: Vec<canon::Digit> = Vec::new();
    for g in 0..g_count {
        let orig = c.inv[g] as usize;
        let (lo, hi) = (c.offsets[g] as usize, c.offsets[g + 1] as usize);
        if lo > hi || hi > c.wires.len() {
            r.error(
                FindingKind::OffsetMonotonicity,
                Some(orig),
                format!("edge range {lo}..{hi} is not monotone/in-bounds"),
            );
            continue;
        }
        let (blo, bhi) = (c.bit_offsets[g] as usize, c.bit_offsets[g + 1] as usize);
        if blo > bhi || bhi > c.bit_slots.len() {
            r.error(
                FindingKind::OffsetMonotonicity,
                Some(orig),
                format!("bit-edge range {blo}..{bhi} is not monotone/in-bounds"),
            );
            continue;
        }
        let class = c.classes[g];
        class_counts[class.index()] += 1;

        let pos = c.pos_counts[g] as usize;
        if pos > hi - lo {
            r.error(
                FindingKind::PosCountSplit,
                Some(orig),
                format!("pos_counts={pos} exceeds fan-in {}", hi - lo),
            );
        }
        let (mut pos_sum, mut neg_sum) = (0i128, 0i128);
        let mut edges_ok = true;
        for e in lo..hi {
            let slot = c.wires[e] as usize;
            if slot >= slots {
                r.error(
                    FindingKind::WireBounds,
                    Some(orig),
                    format!("fan-in slot {slot} outside slot space {slots}"),
                );
                edges_ok = false;
                continue;
            }
            if slot > c.num_inputs {
                let p = slot - 1 - c.num_inputs;
                if internal_layer[p] >= internal_layer[g] {
                    r.error(
                        FindingKind::EdgeOrder,
                        Some(orig),
                        format!(
                            "reads internal gate {p} (layer {}) from layer {}",
                            internal_layer[p], internal_layer[g]
                        ),
                    );
                    edges_ok = false;
                }
            }
            let w = c.weights[e];
            if (e - lo < pos) != (w >= 0) {
                r.error(
                    FindingKind::PosCountSplit,
                    Some(orig),
                    format!(
                        "edge {} (weight {w}) on the wrong side of the split",
                        e - lo
                    ),
                );
            }
            if w >= 0 {
                pos_sum += w as i128;
            } else {
                neg_sum += -(w as i128);
            }
        }
        let narrow = pos_sum <= i64::MAX as i128 && neg_sum <= i64::MAX as i128;
        if c.narrow[g] != narrow {
            r.error(
                FindingKind::NarrowFlag,
                Some(orig),
                format!("narrow flag {} but weight sums say {narrow}", c.narrow[g]),
            );
        }

        // Reclassify from the compiled weights and the stored plane budget.
        let weights = &c.weights[lo..hi];
        if GateClass::classify(weights.iter().copied(), c.batch_planes[g]) != class {
            r.error(
                FindingKind::ClassLabel,
                Some(orig),
                format!("stored class {class:?} disagrees with reclassification"),
            );
        }

        // Reconstruct the expected bit-edge run: per weight, the CSD digits
        // where the whole gate stays on the narrow path, else plain binary —
        // mirroring the compile-time decision, but decided here from the
        // recomputed reach. Unit gates must span zero bit-edges.
        if !edges_ok {
            continue;
        }
        let t_abs = c.thresholds[g].unsigned_abs() as i128;
        let mut expected_csd: Vec<(u32, u8)> = Vec::new();
        let mut expected_bin: Vec<(u32, u8)> = Vec::new();
        let (mut csd_reach, mut bin_reach) = (0i128, 0i128);
        for e in lo..hi {
            let w = c.weights[e];
            let slot = c.wires[e];
            dbuf.clear();
            canon::weight_digits(w.unsigned_abs(), &mut dbuf);
            for &(k, dneg) in &dbuf {
                csd_reach += 1i128 << k;
                let sign = if (w < 0) ^ dneg { 0x80u8 } else { 0 };
                expected_csd.push((slot, k | sign));
            }
            dbuf.clear();
            canon::binary_digits(w.unsigned_abs(), &mut dbuf);
            for &(k, dneg) in &dbuf {
                bin_reach += 1i128 << k;
                let sign = if (w < 0) ^ dneg { 0x80u8 } else { 0 };
                expected_bin.push((slot, k | sign));
            }
        }
        let use_csd = planes_for(csd_reach + t_abs) != WIDE_GATE;
        let (expected, reach) = if use_csd {
            (&expected_csd, csd_reach)
        } else {
            (&expected_bin, bin_reach)
        };
        let planes = planes_for(reach + t_abs);
        if c.batch_planes[g] != planes {
            r.error(
                FindingKind::PlaneBudget,
                Some(orig),
                format!(
                    "batch_planes={} but recomputed reach needs {planes}",
                    c.batch_planes[g]
                ),
            );
        }

        if class == GateClass::Unit {
            if bhi != blo {
                r.error(
                    FindingKind::BitEdgeCertificate,
                    Some(orig),
                    format!("Unit gate spans {} bit-edges (must be 0)", bhi - blo),
                );
            }
            plane_ops[class.index()] += (hi - lo) as u64;
        } else {
            plane_ops[class.index()] += (bhi - blo) as u64;
            let stored: Vec<(u32, u8)> = c.bit_slots[blo..bhi]
                .iter()
                .copied()
                .zip(c.bit_shifts[blo..bhi].iter().copied())
                .collect();
            if stored != *expected {
                r.error(
                    FindingKind::BitEdgeCertificate,
                    Some(orig),
                    format!(
                        "bit-edge run ({} edges) does not reproduce the {} decomposition",
                        stored.len(),
                        if use_csd { "signed-digit" } else { "binary" }
                    ),
                );
            } else {
                // Algebraic certificate, independent of how the digits were
                // produced: each edge's signed digits must sum back to its
                // canonical weight in i128.
                let mut cursor = blo;
                for e in lo..hi {
                    dbuf.clear();
                    let w = c.weights[e];
                    if use_csd {
                        canon::weight_digits(w.unsigned_abs(), &mut dbuf);
                    } else {
                        canon::binary_digits(w.unsigned_abs(), &mut dbuf);
                    }
                    let mut sum = 0i128;
                    for _ in 0..dbuf.len() {
                        let packed = c.bit_shifts[cursor];
                        let mag = 1i128 << (packed & 0x3f);
                        sum += if packed & 0x80 != 0 { -mag } else { mag };
                        cursor += 1;
                    }
                    if sum != w as i128 {
                        r.error(
                            FindingKind::BitEdgeCertificate,
                            Some(orig),
                            format!("bit-edge digits sum to {sum}, weight is {w}"),
                        );
                    }
                }
            }
        }
    }

    // ── Per-class census, plane-op reconciliation, segment table.
    if class_counts != c.class_counts {
        r.error(
            FindingKind::ClassCensus,
            None,
            format!(
                "class_counts {:?} != recount {class_counts:?}",
                c.class_counts
            ),
        );
    }
    if plane_ops != c.class_plane_ops {
        r.error(
            FindingKind::PlaneOps,
            None,
            format!(
                "class_plane_ops {:?} does not reconcile with edge/bit-edge counts {plane_ops:?}",
                c.class_plane_ops
            ),
        );
    }
    let mut segments: Vec<(GateClass, u32, u32)> = Vec::new();
    for (i, &class) in c.classes.iter().enumerate() {
        match segments.last_mut() {
            Some((cl, _, hi)) if *cl == class => *hi = (i + 1) as u32,
            _ => segments.push((class, i as u32, (i + 1) as u32)),
        }
    }
    if segments != c.segments {
        r.error(
            FindingKind::SegmentTable,
            None,
            format!(
                "segment table {:?} != recomputed maximal runs {segments:?}",
                c.segments
            ),
        );
    }

    // ── Outputs stay inside the slot space.
    for (i, &slot) in c.outputs.iter().enumerate() {
        if slot as usize >= slots {
            r.error(
                FindingKind::OutputSlot,
                None,
                format!("output {i} slot {slot} outside slot space {slots}"),
            );
        }
    }

    true
}

/// Verifies a compiled circuit *against its source*: all of
/// [`verify_compiled`] plus the canonicalization certificates (GCD factor,
/// ceiling-quotient threshold, signed-digit sums), the recomputed depth
/// schedule, the fan-in wiring and the pre-canonicalization class census.
pub fn verify_against(circuit: &Circuit, c: &CompiledCircuit) -> VerifyReport {
    let mut r = VerifyReport::default();
    let structural = verify_compiled_into(c, &mut r);

    let num_inputs = circuit.num_inputs();
    let g_count = circuit.num_gates();
    if c.num_inputs != num_inputs || c.classes.len() != g_count {
        r.error(
            FindingKind::SourceMismatch,
            None,
            format!(
                "compiled shape ({} inputs, {} gates) != source ({num_inputs} inputs, {g_count} gates)",
                c.num_inputs,
                c.classes.len()
            ),
        );
        return r;
    }
    if !structural {
        // Structural wreckage: the per-gate cross-checks below would chase
        // broken indices.
        return r;
    }

    // Recompute depths from the raw fan-ins, independently of `compiled.rs`.
    let mut depths = vec![0u32; g_count];
    for (idx, gate) in circuit.gates().iter().enumerate() {
        let mut d = 0u32;
        for &(wire, _) in gate.inputs() {
            if let Wire::Gate(p) = wire {
                if (p as usize) < idx {
                    d = d.max(depths[p as usize]);
                }
            }
        }
        depths[idx] = d + 1;
        if c.depths[idx] != depths[idx] {
            r.error(
                FindingKind::SourceMismatch,
                Some(idx),
                format!(
                    "recorded depth {} != depth {} recomputed from the source",
                    c.depths[idx], depths[idx]
                ),
            );
        }
    }
    if c.wires.len() != circuit.num_edges() {
        r.error(
            FindingKind::SourceMismatch,
            None,
            format!(
                "{} compiled edges != {} source edges",
                c.wires.len(),
                circuit.num_edges()
            ),
        );
        return r;
    }

    // ── Per-gate canonicalization certificates.
    let mut class_counts_pre = [0usize; 3];
    let mut canon_recount = 0usize;
    let mut dbuf: Vec<canon::Digit> = Vec::new();
    for (idx, gate) in circuit.gates().iter().enumerate() {
        let g = c.perm[idx] as usize;
        let (lo, hi) = (c.offsets[g] as usize, c.offsets[g + 1] as usize);
        if hi - lo != gate.fan_in() {
            r.error(
                FindingKind::SourceMismatch,
                Some(idx),
                format!(
                    "compiled fan-in {} != source fan-in {}",
                    hi - lo,
                    gate.fan_in()
                ),
            );
            continue;
        }

        // Pre-canonicalization census: classified from the raw weights with
        // the raw reach.
        let (mut raw_pos, mut raw_neg) = (0i128, 0i128);
        for &(_, w) in gate.inputs() {
            if w >= 0 {
                raw_pos += w as i128;
            } else {
                raw_neg += -(w as i128);
            }
        }
        let planes_pre = planes_for(raw_pos + raw_neg + gate.threshold().unsigned_abs() as i128);
        let class_pre = GateClass::classify(gate.inputs().iter().map(|&(_, w)| w), planes_pre);
        class_counts_pre[class_pre.index()] += 1;

        // The compiled edge order is the raw order with non-negative
        // weights first (a stable partition; GCD factoring preserves
        // signs). Pair each compiled edge with its raw edge.
        let ordered: Vec<(Wire, i64)> = gate
            .inputs()
            .iter()
            .filter(|&&(_, w)| w >= 0)
            .chain(gate.inputs().iter().filter(|&&(_, w)| w < 0))
            .copied()
            .collect();

        // Certified GCD factor: a single integer f ≥ 1 with raw = f·canon
        // on every edge, canonical weights coprime (maximality), threshold
        // the ceiling quotient. Output equivalence follows because for 0/1
        // inputs y, Σ raw·y = f·Σ canon·y ≥ t  ⟺  Σ canon·y ≥ ⌈t/f⌉ over
        // the integers.
        let mut factor: Option<i128> = None;
        let mut cert_ok = true;
        for (e, &(wire, raw_w)) in ordered.iter().enumerate() {
            let cw = c.weights[lo + e];
            let slot = slot_of(wire, num_inputs, &c.perm);
            if slot != Some(c.wires[lo + e] as usize) {
                r.error(
                    FindingKind::SourceMismatch,
                    Some(idx),
                    format!(
                        "edge {e} wired to slot {} instead of {wire:?}",
                        c.wires[lo + e]
                    ),
                );
                cert_ok = false;
                continue;
            }
            match (cw, raw_w) {
                (0, 0) => {}
                (0, _) | (_, 0) => {
                    r.error(
                        FindingKind::GcdCertificate,
                        Some(idx),
                        format!("edge {e}: raw weight {raw_w} vs canonical {cw} (zero mismatch)"),
                    );
                    cert_ok = false;
                }
                (cw, raw_w) => {
                    let (cw, raw_w) = (cw as i128, raw_w as i128);
                    if raw_w % cw != 0 || raw_w / cw < 1 {
                        r.error(
                            FindingKind::GcdCertificate,
                            Some(idx),
                            format!("edge {e}: no positive integer factor maps {cw} to {raw_w}"),
                        );
                        cert_ok = false;
                    } else {
                        let f = raw_w / cw;
                        if *factor.get_or_insert(f) != f {
                            r.error(
                                FindingKind::GcdCertificate,
                                Some(idx),
                                format!(
                                    "edge {e}: factor {f} disagrees with the gate factor {}",
                                    factor.unwrap()
                                ),
                            );
                            cert_ok = false;
                        }
                    }
                }
            }
        }
        let f = factor.unwrap_or(1);
        if cert_ok {
            let canon_gcd = c.weights[lo..hi]
                .iter()
                .fold(0u64, |acc, &w| gcd(acc, w.unsigned_abs()));
            if canon_gcd > 1 {
                r.error(
                    FindingKind::GcdCertificate,
                    Some(idx),
                    format!("canonical weights share a factor {canon_gcd}: factoring not maximal"),
                );
            }
            let rt = gate.threshold() as i128;
            let expect_ct = if f > 1 {
                rt.div_euclid(f) + i128::from(rt.rem_euclid(f) != 0)
            } else {
                rt
            };
            if c.thresholds[g] as i128 != expect_ct {
                r.error(
                    FindingKind::ThresholdCertificate,
                    Some(idx),
                    format!("threshold {} != ⌈{rt}/{f}⌉ = {expect_ct}", c.thresholds[g]),
                );
            }
        }

        // Recount canonicalized gates: a GCD rewrite happened, or the gate
        // is on the signed-digit path with at least one weight whose CSD
        // form is strictly shorter than its binary form.
        let t_abs = c.thresholds[g].unsigned_abs() as i128;
        let mut csd_reach = 0i128;
        let mut csd_shorter = false;
        for &w in &c.weights[lo..hi] {
            dbuf.clear();
            canon::weight_digits(w.unsigned_abs(), &mut dbuf);
            csd_shorter |= (dbuf.len() as u32) < w.unsigned_abs().count_ones();
            for &(k, _) in &dbuf {
                csd_reach += 1i128 << k;
            }
        }
        let use_csd = planes_for(csd_reach + t_abs) != WIDE_GATE;
        if f > 1 || (use_csd && csd_shorter) {
            canon_recount += 1;
        }
    }
    if class_counts_pre != c.class_counts_pre {
        r.error(
            FindingKind::ClassCensus,
            None,
            format!(
                "class_counts_pre {:?} != reclassified raw census {class_counts_pre:?}",
                c.class_counts_pre
            ),
        );
    }
    if canon_recount != c.canon_gates {
        r.error(
            FindingKind::CanonCount,
            None,
            format!(
                "canonicalized-gate counter {} != recount {canon_recount}",
                c.canon_gates
            ),
        );
    }

    // ── Outputs map back to the source output wires.
    if c.outputs.len() != circuit.outputs().len() {
        r.error(
            FindingKind::OutputSlot,
            None,
            format!(
                "{} compiled outputs != {} source outputs",
                c.outputs.len(),
                circuit.outputs().len()
            ),
        );
    } else {
        for (i, &wire) in circuit.outputs().iter().enumerate() {
            if slot_of(wire, num_inputs, &c.perm) != Some(c.outputs[i] as usize) {
                r.error(
                    FindingKind::OutputSlot,
                    None,
                    format!("output {i} slot {} does not encode {wire:?}", c.outputs[i]),
                );
            }
        }
    }

    r
}

/// The pre-compile checks behind [`Circuit::validate`]: raw-gate-list
/// structural errors, then — whenever the circuit lowers cleanly — the full
/// compiled verification plus the constant/dead-gate analyses.
pub(crate) fn validate_circuit(circuit: &Circuit) -> VerifyReport {
    let mut r = VerifyReport::default();
    let num_inputs = circuit.num_inputs();
    let num_gates = circuit.num_gates();

    for (idx, gate) in circuit.gates().iter().enumerate() {
        if gate.fan_in() == 0 {
            r.error(
                FindingKind::EmptyFanIn,
                Some(idx),
                "gate has no fan-in edges".to_string(),
            );
        }
        for &(wire, _) in gate.inputs() {
            let ok = match wire {
                Wire::Input(i) => (i as usize) < num_inputs,
                Wire::Gate(g) => (g as usize) < idx,
                Wire::One => true,
            };
            if !ok {
                r.error(
                    FindingKind::DanglingWire,
                    Some(idx),
                    format!("fan-in wire {wire:?} does not exist yet"),
                );
            }
        }
    }
    for &out in circuit.outputs() {
        let ok = match out {
            Wire::Input(i) => (i as usize) < num_inputs,
            Wire::Gate(g) => (g as usize) < num_gates,
            Wire::One => true,
        };
        if !ok {
            r.error(
                FindingKind::DanglingWire,
                None,
                format!("output wire {out:?} does not exist"),
            );
        }
    }

    match circuit.compile() {
        Ok(compiled) => {
            r.merge(verify_against(circuit, &compiled));
            for g in constant_gates_csr(&compiled) {
                r.advice(
                    FindingKind::ConstantGate,
                    Some(g),
                    "output is provably constant".to_string(),
                );
            }
            for g in dead_gates_csr(&compiled) {
                r.advice(
                    FindingKind::DeadGate,
                    Some(g),
                    "not reachable from any designated output".to_string(),
                );
            }
        }
        Err(_) => {
            // Invalid circuits keep the (slower) gate-list analyses so the
            // report stays complete.
            for (idx, gate) in circuit.gates().iter().enumerate() {
                if gate.is_constant() {
                    r.advice(
                        FindingKind::ConstantGate,
                        Some(idx),
                        "output is provably constant".to_string(),
                    );
                }
            }
            for g in dead_gates_list(circuit) {
                r.advice(
                    FindingKind::DeadGate,
                    Some(g),
                    "not reachable from any designated output".to_string(),
                );
            }
        }
    }
    r
}

/// Gates whose output is provably constant, computed from the CSR weights:
/// a gate is constant when even the most favourable input assignment cannot
/// cross (or avoid crossing) the threshold.
fn constant_gates_csr(compiled: &CompiledCircuit) -> Vec<usize> {
    (0..compiled.num_gates())
        .filter(|&g| {
            let (_, weights) = compiled.fan_in(g);
            let max_sum: i128 = weights.iter().filter(|&&w| w > 0).map(|&w| w as i128).sum();
            let min_sum: i128 = weights.iter().filter(|&&w| w < 0).map(|&w| w as i128).sum();
            let t = compiled.threshold(g) as i128;
            min_sum >= t || max_sum < t
        })
        .collect()
}

/// Gates not reachable (backwards) from any designated output, traversing
/// the compiled CSR adjacency. Slots are internally (depth, class)-sorted,
/// so every slot met during the walk is translated back to its ORIGINAL
/// gate id through [`CompiledCircuit::gate_of_slot`] before indexing.
fn dead_gates_csr(compiled: &CompiledCircuit) -> Vec<usize> {
    let n = compiled.num_gates();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = (0..compiled.num_outputs())
        .filter_map(|i| compiled.gate_of_slot(compiled.output_slot(i)))
        .collect();
    while let Some(g) = stack.pop() {
        if live[g] {
            continue;
        }
        live[g] = true;
        let (wires, _) = compiled.fan_in(g);
        for &slot in wires {
            if let Some(p) = compiled.gate_of_slot(slot as usize) {
                if !live[p] {
                    stack.push(p);
                }
            }
        }
    }
    (0..n).filter(|&g| !live[g]).collect()
}

/// Gates not reachable (backwards) from any designated output, on the raw
/// gate list (fallback for circuits the compiled engine rejects).
fn dead_gates_list(circuit: &Circuit) -> Vec<usize> {
    let n = circuit.num_gates();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = circuit
        .outputs()
        .iter()
        .filter_map(|w| w.as_gate())
        .filter(|&g| g < n)
        .collect();
    while let Some(g) = stack.pop() {
        if live[g] {
            continue;
        }
        live[g] = true;
        for &(wire, _) in circuit.gates()[g].inputs() {
            if let Some(p) = wire.as_gate() {
                if p < n && !live[p] {
                    stack.push(p);
                }
            }
        }
    }
    (0..n).filter(|&g| !live[g]).collect()
}

/// A closed-form bound on one measured quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The measurement must equal this value exactly.
    Exact(u128),
    /// The measurement must not exceed this value.
    AtMost(u128),
}

impl Bound {
    /// Whether `measured` satisfies the bound.
    pub fn admits(self, measured: u128) -> bool {
        match self {
            Bound::Exact(v) => measured == v,
            Bound::AtMost(v) => measured <= v,
        }
    }

    /// The bound's numeric value (the target of `=` or `≤`).
    pub fn value(self) -> u128 {
        match self {
            Bound::Exact(v) | Bound::AtMost(v) => v,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Exact(v) => write!(f, "= {v}"),
            Bound::AtMost(v) => write!(f, "<= {v}"),
        }
    }
}

/// A constructor's closed-form paper bound: depth and gate count (and,
/// where the construction admits a clean formula, edge count), tied to the
/// theorem it instantiates.
///
/// Constructors in `tcmm-core` (and its dependents) expose `paper_bound()`
/// methods returning one of these; [`PaperBound::certify`] asserts the
/// bounds against the compiled artifact and reports violations with the
/// [`FindingKind::DepthBound`]/[`GateBound`](FindingKind::GateBound)/
/// [`EdgeBound`](FindingKind::EdgeBound) kinds.
#[derive(Debug, Clone)]
pub struct PaperBound {
    /// The constructor the bound describes (e.g. `TraceCircuit`).
    pub constructor: &'static str,
    /// The paper theorem the formula comes from (e.g. `Theorem 4.5`).
    pub theorem: &'static str,
    /// Human-readable geometry, e.g. `n=8, b=2, t=2`.
    pub geometry: String,
    /// Bound on circuit depth (layers of gates on the longest path).
    pub depth: Bound,
    /// Bound on gate count (the paper's *size*).
    pub gates: Bound,
    /// Bound on edge count (wiring cost), where a clean formula exists.
    pub edges: Option<Bound>,
}

impl PaperBound {
    /// Asserts the bound against a compiled artifact.
    pub fn certify(&self, compiled: &CompiledCircuit) -> VerifyReport {
        let mut r = VerifyReport::default();
        let ctx = format!("{} ({}, {})", self.constructor, self.theorem, self.geometry);
        let depth = compiled.depth() as u128;
        if !self.depth.admits(depth) {
            r.error(
                FindingKind::DepthBound,
                None,
                format!(
                    "{ctx}: measured depth {depth} violates bound {}",
                    self.depth
                ),
            );
        }
        let gates = compiled.num_gates() as u128;
        if !self.gates.admits(gates) {
            r.error(
                FindingKind::GateBound,
                None,
                format!(
                    "{ctx}: measured {gates} gates violates bound {}",
                    self.gates
                ),
            );
        }
        if let Some(edges) = self.edges {
            let measured = compiled.num_edges() as u128;
            if !edges.admits(measured) {
                r.error(
                    FindingKind::EdgeBound,
                    None,
                    format!("{ctx}: measured {measured} edges violates bound {edges}"),
                );
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, Wire};

    fn mixed_circuit() -> Circuit {
        // Unit, Pow2 and General gates across three layers, with a gate that
        // canonicalizes (GCD factor 3) and a multi-digit weight.
        let mut b = CircuitBuilder::new(3);
        let x = Wire::input(0);
        let y = Wire::input(1);
        let z = Wire::input(2);
        let unit = b.add_gate([(x, 1), (y, -1), (z, 1)], 1).unwrap();
        let pow2 = b.add_gate([(x, 4), (y, -2)], 2).unwrap();
        let canon = b.add_gate([(x, 6), (y, 9), (unit, -3)], 7).unwrap();
        let gen = b.add_gate([(unit, 7), (pow2, -5), (canon, 1)], 3).unwrap();
        let top = b.add_gate([(gen, 1), (canon, 1)], 1).unwrap();
        b.mark_output(top);
        b.mark_output(Wire::input(2));
        b.build()
    }

    fn compiled() -> (Circuit, CompiledCircuit) {
        let c = mixed_circuit();
        let compiled = c.compile().unwrap();
        (c, compiled)
    }

    #[test]
    fn clean_compile_verifies() {
        let (c, compiled) = compiled();
        let r = verify_against(&c, &compiled);
        assert!(r.is_valid(), "{r}");
        assert!(verify_compiled(&compiled).is_valid());
    }

    #[test]
    fn wide_and_extreme_weight_circuits_verify() {
        // Coprime near-extreme weights survive GCD factoring, so the gate
        // genuinely exceeds the plane budget and takes the wide path.
        let mut b = CircuitBuilder::new(2);
        let x = Wire::input(0);
        let y = Wire::input(1);
        let wide = b.add_gate([(x, i64::MAX), (y, i64::MAX - 2)], 1).unwrap();
        let top = b.add_gate([(wide, 1), (x, 1)], 1).unwrap();
        b.mark_output(top);
        let c = b.build();
        let compiled = c.compile().unwrap();
        assert_eq!(compiled.gate_class(0), GateClass::General);
        let r = verify_against(&c, &compiled);
        assert!(r.is_valid(), "{r}");
    }

    // ── Mutation harness: every corruption shape must be rejected with its
    // typed finding kind. The corruptions below poke pub(crate) fields the
    // way a miscompilation would.

    #[test]
    fn mutation_nonmonotone_offsets_are_caught() {
        let (_, mut m) = compiled();
        m.offsets[1] = m.offsets[2] + 1;
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::OffsetMonotonicity), "{r}");
    }

    #[test]
    fn mutation_truncated_offsets_are_caught() {
        let (_, mut m) = compiled();
        m.offsets.pop();
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::CsrShape), "{r}");
    }

    #[test]
    fn mutation_out_of_bounds_wire_is_caught() {
        let (_, mut m) = compiled();
        let slots = 1 + m.num_inputs + m.classes.len();
        m.wires[0] = slots as u32 + 7;
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::WireBounds), "{r}");
    }

    #[test]
    fn mutation_forward_edge_is_caught() {
        let (_, mut m) = compiled();
        // Rewire the first gate's first edge to the last gate's slot: a
        // forward reference the layer schedule would evaluate too early.
        let last_slot = (1 + m.num_inputs + m.classes.len() - 1) as u32;
        m.wires[0] = last_slot;
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::EdgeOrder), "{r}");
    }

    #[test]
    fn mutation_swapped_permutation_is_caught() {
        let (_, mut m) = compiled();
        let mut perm = m.perm.to_vec();
        perm.swap(0, 1);
        m.perm = perm.into();
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::Renumbering), "{r}");
    }

    #[test]
    fn mutation_flipped_class_label_is_caught() {
        let (_, mut m) = compiled();
        let g = m
            .classes
            .iter()
            .position(|&c| c == GateClass::Unit)
            .unwrap();
        m.classes[g] = GateClass::General;
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::ClassLabel), "{r}");
    }

    #[test]
    fn mutation_tampered_segment_table_is_caught() {
        let (_, mut m) = compiled();
        assert!(m.segments.len() >= 2, "fixture needs multiple segments");
        let (_, lo, _) = m.segments[0];
        let (cl1, _, hi1) = m.segments[1];
        m.segments[0] = (cl1, lo, hi1);
        m.segments.remove(1);
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::SegmentTable), "{r}");
    }

    #[test]
    fn mutation_wrong_plane_ops_are_caught() {
        let (_, mut m) = compiled();
        m.class_plane_ops[0] += 1;
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::PlaneOps), "{r}");
    }

    #[test]
    fn mutation_forged_threshold_certificate_is_caught() {
        let (c, mut m) = compiled();
        // Gate 2 GCD-factors [6, 9, -3]/3 with t: 7 -> ceil(7/3) = 3.
        // Forging the canonical threshold breaks the ceiling-quotient
        // certificate even though the structural invariants still hold.
        let g = m.perm[2] as usize;
        assert_eq!(m.thresholds[g], 3);
        m.thresholds[g] = 2;
        let r = verify_against(&c, &m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::ThresholdCertificate), "{r}");
    }

    #[test]
    fn mutation_forged_gcd_factor_is_caught() {
        let (c, mut m) = compiled();
        // Doubling one canonical weight of the factored gate makes the
        // per-edge factor inconsistent.
        let g = m.perm[2] as usize;
        let lo = m.offsets[g] as usize;
        m.weights[lo] *= 2;
        let r = verify_against(&c, &m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::GcdCertificate), "{r}");
    }

    #[test]
    fn mutation_corrupted_bit_digit_is_caught() {
        let (_, mut m) = compiled();
        assert!(!m.bit_shifts.is_empty());
        m.bit_shifts[0] ^= 1;
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::BitEdgeCertificate), "{r}");
    }

    #[test]
    fn mutation_wrong_pos_split_is_caught() {
        let (_, mut m) = compiled();
        // The Unit gate [1, -1, 1] compiles with pos_counts = 2.
        let g = m
            .classes
            .iter()
            .position(|&c| c == GateClass::Unit)
            .unwrap();
        m.pos_counts[g] = 1;
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::PosCountSplit), "{r}");
    }

    #[test]
    fn mutation_wrong_plane_budget_is_caught() {
        let (_, mut m) = compiled();
        m.batch_planes[0] += 1;
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::PlaneBudget), "{r}");
    }

    #[test]
    fn mutation_flipped_narrow_flag_is_caught() {
        let (_, mut m) = compiled();
        m.narrow[0] = !m.narrow[0];
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::NarrowFlag), "{r}");
    }

    #[test]
    fn mutation_out_of_bounds_output_is_caught() {
        let (_, mut m) = compiled();
        m.outputs[0] = u32::MAX;
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::OutputSlot), "{r}");
    }

    #[test]
    fn mutation_wrong_depth_record_is_caught() {
        let (c, mut m) = compiled();
        m.depths[4] += 1;
        // The layer schedule no longer matches the recorded depth...
        let r = verify_compiled(&m);
        assert!(!r.is_valid());
        assert!(r.has(FindingKind::LayerSchedule), "{r}");
        // ...and the source cross-check rejects the record as well.
        let r = verify_against(&c, &m);
        assert!(!r.is_valid());
    }

    // ── Paper-bound certification plumbing.

    #[test]
    fn paper_bounds_certify_and_reject() {
        let (_, m) = compiled();
        let good = PaperBound {
            constructor: "mixed_circuit",
            theorem: "fixture",
            geometry: "n=3".to_string(),
            depth: Bound::Exact(m.depth() as u128),
            gates: Bound::AtMost(m.num_gates() as u128),
            edges: Some(Bound::Exact(m.num_edges() as u128)),
        };
        assert!(good.certify(&m).is_valid());

        let bad = PaperBound {
            depth: Bound::Exact(m.depth() as u128 + 1),
            gates: Bound::AtMost(m.num_gates() as u128 - 1),
            edges: Some(Bound::AtMost(0)),
            ..good
        };
        let r = bad.certify(&m);
        assert!(r.has(FindingKind::DepthBound));
        assert!(r.has(FindingKind::GateBound));
        assert!(r.has(FindingKind::EdgeBound));
        assert_eq!(r.error_count(), 3);
    }

    // ── Migrated `Circuit::validate` behaviour (the old ValidationReport).

    #[test]
    fn builder_output_is_valid() {
        let mut b = CircuitBuilder::new(2);
        let g = b
            .add_gate([(Wire::input(0), 1), (Wire::input(1), 1)], 1)
            .unwrap();
        b.mark_output(g);
        let report = b.build().validate();
        assert!(report.is_valid());
        assert!(report.dead_gates().is_empty());
        assert!(report.constant_gates().is_empty());
    }

    #[test]
    fn detects_dead_gates() {
        let mut b = CircuitBuilder::new(2);
        let used = b.add_gate([(Wire::input(0), 1)], 1).unwrap();
        let _unused = b.add_gate([(Wire::input(1), 1)], 1).unwrap();
        b.mark_output(used);
        let report = b.build().validate();
        assert!(report.is_valid());
        assert_eq!(report.dead_gates(), vec![1]);
    }

    #[test]
    fn detects_constant_gates() {
        let mut b = CircuitBuilder::new(1);
        let g = b.add_gate([(Wire::input(0), 1)], 5).unwrap(); // never fires
        b.mark_output(g);
        let report = b.build().validate();
        assert!(report.is_valid());
        assert_eq!(report.constant_gates(), vec![0]);
    }

    #[test]
    fn dead_gate_analysis_survives_class_renumbering() {
        // Gate 0 is General-class (multi-bit weight) and the designated
        // output; gate 1 is Unit-class and dead. The internal (depth, class)
        // sort orders gate 1 before gate 0, so any id-space mixup between
        // internal slots and original ids would report gate 0 dead and
        // gate 1 live.
        let mut b = CircuitBuilder::new(2);
        let live = b.add_gate([(Wire::input(0), 3)], 2).unwrap();
        let _dead = b.add_gate([(Wire::input(1), 1)], 1).unwrap();
        b.mark_output(live);
        let report = b.build().validate();
        assert!(report.is_valid());
        assert_eq!(report.dead_gates(), vec![1]);

        // Same shape one layer deeper: liveness must flow through the
        // permuted fan-in slots, not raw slot arithmetic.
        let mut b = CircuitBuilder::new(2);
        let keep = b.add_gate([(Wire::input(0), 3)], 2).unwrap();
        let drop = b.add_gate([(Wire::input(1), 1)], 1).unwrap();
        let top = b.add_gate([(keep, 5), (Wire::input(1), 1)], 2).unwrap();
        let _ = drop;
        b.mark_output(top);
        let report = b.build().validate();
        assert_eq!(report.dead_gates(), vec![1]);
    }

    #[test]
    fn transitive_liveness_through_intermediate_gates() {
        let mut b = CircuitBuilder::new(1);
        let g0 = b.add_gate([(Wire::input(0), 1)], 1).unwrap();
        let g1 = b.add_gate([(g0, 1)], 1).unwrap();
        let g2 = b.add_gate([(g1, 1)], 1).unwrap();
        b.mark_output(g2);
        let report = b.build().validate();
        assert!(report.dead_gates().is_empty());
    }

    #[test]
    fn output_referencing_input_is_valid() {
        let mut b = CircuitBuilder::new(1);
        b.mark_output(Wire::input(0));
        assert!(b.build().validate().is_valid());
    }

    #[test]
    fn report_renders_findings() {
        let (_, mut m) = compiled();
        m.class_plane_ops[1] += 3;
        let r = verify_compiled(&m);
        let rendered = format!("{r}");
        assert!(rendered.contains("error[plane-ops]"), "{rendered}");
        assert!(rendered.contains("error(s)"), "{rendered}");
    }
}
