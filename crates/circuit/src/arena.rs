//! Reusable plane scratch for the batch kernels: allocation-free
//! steady-state serving.
//!
//! Every batch pass needs a slot array (`[u64; W]` lane words per slot) and
//! a bit-sliced firing counter. Allocating those per call costs megabytes of
//! page-zeroing on paper-scale circuits (~7 MB of slots for an 881k-gate
//! trace circuit, per group). A [`PlaneArena`] owns that storage across
//! calls: input rows are packed straight into it, the kernel runs in place,
//! and the returned [`ArenaEvaluation`] is a borrowed view — after the first
//! call per (circuit, width), [`CompiledCircuit::evaluate_rows_arena`]
//! performs **zero** heap allocations (pinned by the allocation-counting
//! test in `tc-runtime`).

use crate::compiled::{CompiledCircuit, FIRING_PLANES};
use crate::eval::Evaluation;
use crate::kernel::{firing_counts_into, word_mask};
use crate::{CircuitError, Result};

/// Reusable scratch storage for the width-generic batch kernel.
///
/// One arena serves any circuit and any lane width (`W ∈ {1, 2, 4, 8}`); it
/// grows to the largest (slots × width) it has seen and never shrinks.
/// Runtime workers own one arena each, so steady-state serving never touches
/// the allocator.
#[derive(Debug, Default)]
pub struct PlaneArena {
    /// Slot planes followed by firing planes, `(slots + FIRING_PLANES) * W`
    /// words when in use.
    words: Vec<u64>,
    /// Per-lane firing counts of the most recent evaluation.
    counts: Vec<u32>,
}

impl PlaneArena {
    /// A fresh arena holding no storage (grows on first use).
    pub fn new() -> Self {
        PlaneArena::default()
    }

    /// Bytes currently retained by the arena.
    pub fn capacity_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
            + self.counts.capacity() * std::mem::size_of::<u32>()
    }
}

/// Reinterprets a word slice as `[u64; W]` planes.
///
/// Sound because `[u64; W]` has `u64` alignment, size `8·W`, and no padding;
/// the length is checked to be an exact multiple of `W`.
fn as_planes_mut<const W: usize>(words: &mut [u64]) -> &mut [[u64; W]] {
    debug_assert_eq!(words.len() % W, 0);
    // SAFETY: see above — same allocation, same lifetime, exact fit.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut [u64; W], words.len() / W) }
}

impl CompiledCircuit {
    /// Packs `rows` into `arena` and evaluates them in one pass of the
    /// width-generic kernel — the zero-allocation serving entry point.
    ///
    /// Accepts up to `64·W` rows (any ragged count, including zero). Lane
    /// `l` of the returned view is bit-identical to `evaluate(&rows[l])` —
    /// outputs and firing counts. After the arena has grown to this
    /// circuit's size, repeated calls perform no heap allocation.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::BatchTooWide`] for more than `64·W` rows;
    /// * [`CircuitError::InputLengthMismatch`] if any row has the wrong
    ///   length.
    // lint:hot-path-begin — the zero-allocation serving entry point; only
    // the warm-up `resize` below may touch the allocator, and only until
    // the arena reaches this circuit's high-water mark.
    pub fn evaluate_rows_arena<'a, const W: usize>(
        &'a self,
        rows: &[&[bool]],
        arena: &'a mut PlaneArena,
    ) -> Result<ArenaEvaluation<'a>> {
        let lanes = rows.len();
        if lanes > 64 * W {
            return Err(CircuitError::BatchTooWide { rows: lanes });
        }
        let slots = self.len_slots();
        let needed = (slots + FIRING_PLANES) * W;
        if arena.words.len() < needed {
            arena.words.resize(needed, 0);
        }
        let (val_words, firing_words) = arena.words[..needed].split_at_mut(slots * W);
        let vals = as_planes_mut::<W>(val_words);
        let firing = as_planes_mut::<W>(firing_words);

        // Only the constant-one + input region and the firing planes need
        // zeroing; every gate slot is overwritten by the kernel.
        vals[..1 + self.num_inputs].fill([0u64; W]);
        vals[0] = [!0u64; W];
        if self.num_inputs == 0 {
            // Explicit early-accept for zero-width rows (a circuit with no
            // inputs, fed only by the constant-one wire). The general loop
            // below would handle this case too — vacuous packing, same
            // length check — but only implicitly; this branch states the
            // contract (empty rows accepted, non-empty rows rejected) so
            // it cannot be lost in a packing-loop refactor, and the
            // regression tests pin it.
            if let Some(row) = rows.iter().find(|r| !r.is_empty()) {
                return Err(CircuitError::InputLengthMismatch {
                    expected: 0,
                    actual: row.len(),
                });
            }
        } else {
            for (lane, row) in rows.iter().enumerate() {
                if row.len() != self.num_inputs {
                    return Err(CircuitError::InputLengthMismatch {
                        expected: self.num_inputs,
                        actual: row.len(),
                    });
                }
                let (word, bit) = (lane / 64, lane % 64);
                for (i, &value) in row.iter().enumerate() {
                    // lint:allow(narrowing-cast): a bool is exactly 0 or 1
                    vals[1 + i][word] |= (value as u64) << bit;
                }
            }
        }
        firing.fill([0u64; W]);

        if lanes > 0 {
            self.run_planes::<W>(vals, firing, lanes);
        }
        arena.counts.clear();
        firing_counts_into::<W>(firing, lanes, &mut arena.counts);

        Ok(ArenaEvaluation {
            circuit: self,
            vals: val_words,
            words: W,
            lanes,
            counts: &arena.counts,
        })
    }
    // lint:hot-path-end
}

/// A borrowed view over an arena evaluation: designated outputs, firing
/// counts, and (for callers that decode interior wires) full per-gate
/// values, all bounds-checked against the batch's lane count.
#[derive(Debug)]
pub struct ArenaEvaluation<'a> {
    circuit: &'a CompiledCircuit,
    /// Slot-major lane words: slot `s` occupies `vals[s*words..(s+1)*words]`.
    vals: &'a [u64],
    words: usize,
    lanes: usize,
    counts: &'a [u32],
}

impl ArenaEvaluation<'_> {
    /// Number of valid lanes (the batch's row count).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    fn check_lane(&self, lane: usize) -> Result<()> {
        if lane >= self.lanes {
            return Err(CircuitError::LaneOutOfRange {
                lane,
                lanes: self.lanes,
            });
        }
        Ok(())
    }

    #[inline]
    fn slot_bit(&self, slot: usize, lane: usize) -> bool {
        (self.vals[slot * self.words + lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// The value of output `i` for assignment `lane`.
    pub fn output(&self, lane: usize, i: usize) -> Result<bool> {
        self.check_lane(lane)?;
        let slot = *self
            .circuit
            .outputs
            .get(i)
            .ok_or(CircuitError::OutputIndexOutOfRange {
                index: i,
                len: self.circuit.outputs.len(),
            })?;
        Ok(self.slot_bit(slot as usize, lane))
    }

    /// All designated output values for assignment `lane`.
    pub fn outputs(&self, lane: usize) -> Result<Vec<bool>> {
        let mut out = Vec::with_capacity(self.circuit.outputs.len());
        self.outputs_into(lane, &mut out)?;
        Ok(out)
    }

    /// Writes the designated output values for assignment `lane` into `out`
    /// (cleared first, capacity reused) — the allocation-free counterpart of
    /// [`ArenaEvaluation::outputs`] for pooled response buffers.
    pub fn outputs_into(&self, lane: usize, out: &mut Vec<bool>) -> Result<()> {
        self.check_lane(lane)?;
        out.clear();
        out.extend(
            self.circuit
                .outputs
                .iter()
                .map(|&s| self.slot_bit(s as usize, lane)),
        );
        Ok(())
    }

    /// Lane word `word` of designated output `i`, masked to valid lanes.
    #[inline]
    pub fn output_lane_mask(&self, i: usize, word: usize) -> u64 {
        let slot = self.circuit.outputs[i] as usize;
        self.vals[slot * self.words + word] & word_mask(self.lanes, word)
    }

    /// Number of gates that fired for assignment `lane` (the evaluation's
    /// *energy* in the Uchizawa–Douglas–Maass model).
    pub fn firing_count(&self, lane: usize) -> Result<u32> {
        self.check_lane(lane)?;
        Ok(self.counts[lane])
    }

    /// Per-lane firing counts, one entry per valid lane.
    #[inline]
    pub fn firing_counts(&self) -> &[u32] {
        self.counts
    }

    /// Expands one lane into a full [`Evaluation`] (original gate order),
    /// identical to what the scalar evaluator returns for that assignment.
    pub fn evaluation(&self, lane: usize) -> Result<Evaluation> {
        let mut ev = Evaluation::default();
        self.evaluation_into(lane, &mut ev)?;
        Ok(ev)
    }

    /// Expands one lane into `out`, a recycled [`Evaluation`] shell, reusing
    /// its buffers' capacity — the allocation-free counterpart of
    /// [`ArenaEvaluation::evaluation`] for pooled response payloads. The
    /// refilled shell is bit-identical to what the scalar evaluator returns
    /// for that assignment.
    pub fn evaluation_into(&self, lane: usize, out: &mut Evaluation) -> Result<()> {
        self.check_lane(lane)?;
        let (gate_values, outputs) = out.parts_mut();
        gate_values.clear();
        gate_values.extend(
            (0..self.circuit.num_gates())
                .map(|g| self.slot_bit(self.circuit.slot_of_gate(g), lane)),
        );
        self.outputs_into(lane, outputs)
    }
}
