//! The unified width-generic bit-sliced kernel.
//!
//! One carry-save plane kernel serves every lane width: `W = 1` is the
//! classic 64-lane path behind [`CompiledCircuit::evaluate_batch64`], and
//! `W ∈ {2, 4, 8}` are the 128/256/512-lane wide paths behind
//! [`CompiledCircuit::evaluate_batch_wide`] (the duplicated per-width
//! implementations this module replaced lived in `compiled.rs` and
//! `wide.rs`). Every word-column of a plane is an independent instance of
//! the 64-lane kernel — carries never propagate between words — so lane `l`
//! of any width is bit-identical to the scalar evaluator on assignment `l`.
//!
//! The kernel body ([`CompiledCircuit::run_planes_core`]) is generic over a
//! [`WordVec`]: the `W` word-columns of one plane are the lanes of one
//! vector value, so the same source compiles to portable `[u64; W]` loops
//! *and* to explicit SSE2/AVX2/AVX-512/NEON code. [`CompiledCircuit::run_planes`]
//! dispatches per width on runtime CPU-feature detection (see `simd.rs`);
//! the portable instantiation is the fallback and the differential oracle.
//! Vector ripple loops run while *any* word-column still carries — finished
//! columns see no-op lane operations — so every arm is bit-identical.
//!
//! The kernel walks the compiled circuit's class *segments* (maximal runs of
//! equal [`GateClass`] in the internal `(depth, class)`-sorted gate order)
//! and dispatches once per segment instead of once per gate:
//!
//! * [`GateClass::Unit`] — all weights ±1: the gate's raw lane words are
//!   carry-save-added from plane 0, positives then negatives (the compiled
//!   edge order), with no bit-edge indirection at all;
//! * [`GateClass::Pow2`] — single-set-bit weights: exactly one shift-indexed
//!   plane addition per edge;
//! * [`GateClass::General`] — bit-edge decomposition (canonical signed-digit
//!   form where that is shorter; see `canon.rs`), with the cold per-lane
//!   `i128` fallback for gates whose weight reach exceeds the plane budget.

use crate::compiled::{CompiledCircuit, GateClass, FIRING_PLANES, WIDE_GATE};
use crate::simd::{self, WordVec, Words};

/// Valid-lane mask for word `word` of a batch carrying `lanes` assignments.
#[inline]
pub(crate) fn word_mask(lanes: usize, word: usize) -> u64 {
    let lo = word * 64;
    if lanes >= lo + 64 {
        !0u64
    } else if lanes <= lo {
        0u64
    } else {
        (1u64 << (lanes - lo)) - 1
    }
}

/// Ripple-adds `carry` into a bit-sliced counter starting at plane `i`:
/// all `W` word-columns advance together, looping while *any* still
/// carries (word-columns whose carry already died see no-op lane ops, so
/// the result is bit-identical to per-word ripple); amortised O(1) planes
/// touched per call.
#[inline(always)]
fn ripple_add<const W: usize, V: WordVec<W>>(
    planes: &mut [[u64; W]; 64],
    mut i: usize,
    mut carry: V,
) {
    while carry.any() {
        let a = V::load(&planes[i]);
        a.xor(carry).store(&mut planes[i]);
        carry = carry.and(a);
        i += 1;
    }
}

/// `S = POS - NEG - t` per lane over `p` planes, bit-sliced across all `W`
/// word-columns at once; the returned value has bit `l` of word `w` set iff
/// `S >= 0` for lane `64·w + l`.
#[inline(always)]
fn fired_planes<const W: usize, V: WordVec<W>>(
    pos: &[[u64; W]; 64],
    neg: &[[u64; W]; 64],
    p: usize,
    t: i64,
) -> V {
    let mut carry = V::ones(); // first +1 of the two two's-complement negations
    let mut carry2 = V::ones(); // second +1
    let mut sign = V::zero();
    for i in 0..p {
        let a = V::load(&pos[i]);
        let b = V::load(&neg[i]).not();
        let s1 = a.xor3(b, carry);
        carry = a.maj(b, carry);
        // Subtract the matching plane of the constant threshold.
        let tb = if (t >> i.min(63)) & 1 == 1 {
            V::zero()
        } else {
            V::ones()
        };
        sign = s1.xor3(tb, carry2);
        carry2 = s1.maj(tb, carry2);
    }
    sign.not()
}

/// Ripple-adds `carry` (already masked to valid lanes) into the bit-sliced
/// firing counter.
#[inline(always)]
fn count_firing<const W: usize, V: WordVec<W>>(firing: &mut [[u64; W]], mut carry: V) {
    let mut i = 0;
    while carry.any() {
        let a = V::load(&firing[i]);
        a.xor(carry).store(&mut firing[i]);
        carry = carry.and(a);
        i += 1;
    }
}

/// Reinterprets `&mut [[u64; A]]` as `&mut [[u64; B]]` once a width match
/// (`A == B`) has been established at runtime — the bridge between the
/// const-generic `W` of the public kernel entry and the concrete widths the
/// SIMD dispatch arms are written for.
#[inline(always)]
fn cast_width<const A: usize, const B: usize>(v: &mut [[u64; A]]) -> &mut [[u64; B]] {
    assert_eq!(A, B);
    // SAFETY: A == B (checked above), so the element layouts are identical.
    unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr() as *mut [u64; B], v.len()) }
}

impl CompiledCircuit {
    /// The width-generic kernel entry: evaluates every gate over `vals`
    /// (slot-indexed `[u64; W]` lane words, constant-one and inputs already
    /// packed) and accumulates per-lane firing counts into `firing`
    /// (`FIRING_PLANES` planes, zeroed by the caller).
    ///
    /// Gate slots are written in internal `(depth, class)` order — callers
    /// translate to original gate ids through the compiled permutation.
    /// Lanes at and beyond `lanes` hold unspecified values; firing counts
    /// only accumulate valid lanes.
    ///
    /// Dispatches on [`simd::active_level`]: the widths a detected vector
    /// ISA covers run the explicitly vectorized instantiations of
    /// [`CompiledCircuit::run_planes_core`]; everything else (and the
    /// force-portable arm) runs the portable `[u64; W]` instantiation.
    /// All arms are bit-identical.
    pub(crate) fn run_planes<const W: usize>(
        &self,
        vals: &mut [[u64; W]],
        firing: &mut [[u64; W]],
        lanes: usize,
    ) {
        debug_assert!(vals.len() >= self.len_slots());
        debug_assert!(firing.len() >= FIRING_PLANES);
        debug_assert!(lanes <= 64 * W);

        #[cfg(target_arch = "x86_64")]
        {
            let level = simd::active_level();
            use simd::SimdLevel;
            match (W, level) {
                (2, SimdLevel::Sse2 | SimdLevel::Avx2 | SimdLevel::Avx512) => {
                    // SSE2 is part of the x86_64 baseline: no runtime gate
                    // beyond the force-portable switch.
                    return self.run_planes_core::<2, simd::Sse2>(
                        cast_width(vals),
                        cast_width(firing),
                        lanes,
                    );
                }
                (4, SimdLevel::Avx2 | SimdLevel::Avx512) => {
                    // SAFETY: AVX2 presence established by `active_level`.
                    return unsafe {
                        self.run_planes_avx2_w4(cast_width(vals), cast_width(firing), lanes)
                    };
                }
                (4, SimdLevel::Sse2) => {
                    return self.run_planes_core::<4, simd::Pair4<simd::Sse2>>(
                        cast_width(vals),
                        cast_width(firing),
                        lanes,
                    );
                }
                (8, SimdLevel::Avx512) => {
                    // SAFETY: AVX-512F presence established by `active_level`.
                    return unsafe {
                        self.run_planes_avx512_w8(cast_width(vals), cast_width(firing), lanes)
                    };
                }
                (8, SimdLevel::Avx2) => {
                    // SAFETY: AVX2 presence established by `active_level`.
                    return unsafe {
                        self.run_planes_avx2_w8(cast_width(vals), cast_width(firing), lanes)
                    };
                }
                (8, SimdLevel::Sse2) => {
                    return self.run_planes_core::<8, simd::Pair8<simd::Pair4<simd::Sse2>>>(
                        cast_width(vals),
                        cast_width(firing),
                        lanes,
                    );
                }
                _ => {}
            }
        }

        #[cfg(target_arch = "aarch64")]
        {
            if simd::active_level() == simd::SimdLevel::Neon {
                // NEON is part of the aarch64 baseline.
                match W {
                    2 => {
                        return self.run_planes_core::<2, simd::Neon>(
                            cast_width(vals),
                            cast_width(firing),
                            lanes,
                        );
                    }
                    4 => {
                        return self.run_planes_core::<4, simd::Pair4<simd::Neon>>(
                            cast_width(vals),
                            cast_width(firing),
                            lanes,
                        );
                    }
                    8 => {
                        return self.run_planes_core::<8, simd::Pair8<simd::Pair4<simd::Neon>>>(
                            cast_width(vals),
                            cast_width(firing),
                            lanes,
                        );
                    }
                    _ => {}
                }
            }
        }

        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        let _ = simd::active_level(); // keep detection warm off-ISA too

        self.run_planes_core::<W, Words<W>>(vals, firing, lanes)
    }

    /// AVX2 instantiation for `W = 4` (256-lane passes).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (callers dispatch behind
    /// `is_x86_feature_detected!`).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: `unsafe` here comes only from `#[target_feature]` — the body
    // performs no unsafe operation itself; callers dispatch behind the
    // runtime feature check documented above.
    unsafe fn run_planes_avx2_w4(
        &self,
        vals: &mut [[u64; 4]],
        firing: &mut [[u64; 4]],
        lanes: usize,
    ) {
        self.run_planes_core::<4, simd::Avx2>(vals, firing, lanes)
    }

    /// AVX2-pair instantiation for `W = 8` (512-lane passes on AVX2-only
    /// hardware).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: `unsafe` here comes only from `#[target_feature]` — the body
    // performs no unsafe operation itself; callers dispatch behind the
    // runtime feature check documented above.
    unsafe fn run_planes_avx2_w8(
        &self,
        vals: &mut [[u64; 8]],
        firing: &mut [[u64; 8]],
        lanes: usize,
    ) {
        self.run_planes_core::<8, simd::Pair8<simd::Avx2>>(vals, firing, lanes)
    }

    /// AVX-512F instantiation for `W = 8` (512-lane passes; `xor3`/`maj`
    /// collapse to `vpternlogq`).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX-512F.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    // SAFETY: `unsafe` here comes only from `#[target_feature]` — the body
    // performs no unsafe operation itself; callers dispatch behind the
    // runtime feature check documented above.
    unsafe fn run_planes_avx512_w8(
        &self,
        vals: &mut [[u64; 8]],
        firing: &mut [[u64; 8]],
        lanes: usize,
    ) {
        self.run_planes_core::<8, simd::Avx512>(vals, firing, lanes)
    }

    /// The kernel body, generic over the vector type carrying one plane's
    /// `W` word-columns. `#[inline(always)]` so each `#[target_feature]`
    /// wrapper compiles its own fully vectorized copy.
    #[inline(always)]
    fn run_planes_core<const W: usize, V: WordVec<W>>(
        &self,
        vals: &mut [[u64; W]],
        firing: &mut [[u64; W]],
        lanes: usize,
    ) {
        let gate_base = 1 + self.num_inputs;
        let mut wmask = [0u64; W];
        for (w, m) in wmask.iter_mut().enumerate() {
            *m = word_mask(lanes, w);
        }
        let wmask = V::load(&wmask);
        // Per-gate carry-save accumulators for positive and negative weight
        // magnitudes, shared across every class arm.
        let mut pos = [[0u64; W]; 64];
        let mut neg = [[0u64; W]; 64];

        for &(class, seg_lo, seg_hi) in &self.segments {
            match class {
                GateClass::Unit => {
                    for g in seg_lo as usize..seg_hi as usize {
                        let p = self.batch_planes[g] as usize;
                        pos[..p].fill([0u64; W]);
                        neg[..p].fill([0u64; W]);
                        let lo = self.offsets[g] as usize;
                        let hi = self.offsets[g + 1] as usize;
                        let split = lo + self.pos_counts[g] as usize;
                        // ±1 weights: each edge is one carry-save addition of
                        // the raw lane words from plane 0 — no bit-edges, no
                        // shift decode, no sign branch.
                        for e in lo..split {
                            let mask = V::load(&vals[self.wires[e] as usize]);
                            ripple_add(&mut pos, 0, mask);
                        }
                        for e in split..hi {
                            let mask = V::load(&vals[self.wires[e] as usize]);
                            ripple_add(&mut neg, 0, mask);
                        }
                        let t = self.thresholds[g];
                        let fired = fired_planes::<W, V>(&pos, &neg, p, t);
                        fired.store(&mut vals[gate_base + g]);
                        count_firing(firing, fired.and(wmask));
                    }
                }
                GateClass::Pow2 => {
                    for g in seg_lo as usize..seg_hi as usize {
                        // Single-set-bit weights: exactly one shift-indexed
                        // plane addition per edge.
                        let fired = self.fire_bit_edges::<W, V>(g, vals, &mut pos, &mut neg);
                        fired.store(&mut vals[gate_base + g]);
                        count_firing(firing, fired.and(wmask));
                    }
                }
                GateClass::General => {
                    for g in seg_lo as usize..seg_hi as usize {
                        if self.batch_planes[g] == WIDE_GATE {
                            let fired = self.fire_wide_lanes(g, vals, lanes);
                            let fired = V::load(&fired);
                            fired.store(&mut vals[gate_base + g]);
                            count_firing(firing, fired.and(wmask));
                        } else {
                            let fired = self.fire_bit_edges::<W, V>(g, vals, &mut pos, &mut neg);
                            fired.store(&mut vals[gate_base + g]);
                            count_firing(firing, fired.and(wmask));
                        }
                    }
                }
            }
        }
    }

    /// Accumulates one bit-edge gate (`Pow2`/`General`, plane budget holds):
    /// ripple-adds every bit-edge's lane words at its shift, then compares
    /// against the threshold.
    #[inline(always)]
    fn fire_bit_edges<const W: usize, V: WordVec<W>>(
        &self,
        g: usize,
        vals: &[[u64; W]],
        pos: &mut [[u64; W]; 64],
        neg: &mut [[u64; W]; 64],
    ) -> V {
        let p = self.batch_planes[g] as usize;
        pos[..p].fill([0u64; W]);
        neg[..p].fill([0u64; W]);
        let lo = self.bit_offsets[g] as usize;
        let hi = self.bit_offsets[g + 1] as usize;
        for e in lo..hi {
            let mask = V::load(&vals[self.bit_slots[e] as usize]);
            let desc = self.bit_shifts[e];
            let planes_arr = if desc & 0x80 != 0 {
                &mut *neg
            } else {
                &mut *pos
            };
            let base = (desc & 0x3F) as usize;
            ripple_add(planes_arr, base, mask);
        }
        let t = self.thresholds[g];
        fired_planes::<W, V>(pos, neg, p, t)
    }

    /// Wide-gate fallback: evaluates each lane with an `i128` accumulator.
    /// Only reached when a gate's weight reach exceeds the plane budget
    /// (~2^61), which no paper construction does.
    #[cold]
    fn fire_wide_lanes<const W: usize>(
        &self,
        g: usize,
        vals: &[[u64; W]],
        lanes: usize,
    ) -> [u64; W] {
        let lo = self.offsets[g] as usize;
        let hi = self.offsets[g + 1] as usize;
        let t = self.thresholds[g] as i128;
        let mut fired = [0u64; W];
        for l in 0..lanes {
            let (word, bit) = (l / 64, l % 64);
            let mut acc: i128 = 0;
            for e in lo..hi {
                if (vals[self.wires[e] as usize][word] >> bit) & 1 == 1 {
                    acc += self.weights[e] as i128;
                }
            }
            // lint:allow(narrowing-cast): a bool is exactly 0 or 1
            fired[word] |= ((acc >= t) as u64) << bit;
        }
        fired
    }
}

/// Expands bit-sliced firing planes into per-lane counts, appending `lanes`
/// entries to `out`.
pub(crate) fn firing_counts_into<const W: usize>(
    firing: &[[u64; W]],
    lanes: usize,
    out: &mut Vec<u32>,
) {
    let start = out.len();
    out.resize(start + lanes, 0);
    let counts = &mut out[start..];
    for (k, plane) in firing.iter().enumerate().take(FIRING_PLANES) {
        for (w, &word) in plane.iter().enumerate() {
            let mut m = word & word_mask(lanes, w);
            while m != 0 {
                let l = w * 64 + m.trailing_zeros() as usize;
                counts[l] += 1 << k;
                m &= m - 1;
            }
        }
    }
}
