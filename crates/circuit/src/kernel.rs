//! The unified width-generic bit-sliced kernel.
//!
//! One carry-save plane kernel serves every lane width: `W = 1` is the
//! classic 64-lane path behind [`CompiledCircuit::evaluate_batch64`], and
//! `W ∈ {2, 4, 8}` are the 128/256/512-lane wide paths behind
//! [`CompiledCircuit::evaluate_batch_wide`] (the duplicated per-width
//! implementations this module replaced lived in `compiled.rs` and
//! `wide.rs`). Every word-column of a plane is an independent instance of
//! the 64-lane kernel — carries never propagate between words — so lane `l`
//! of any width is bit-identical to the scalar evaluator on assignment `l`.
//!
//! The kernel walks the compiled circuit's class *segments* (maximal runs of
//! equal [`GateClass`] in the internal `(depth, class)`-sorted gate order)
//! and dispatches once per segment instead of once per gate:
//!
//! * [`GateClass::Unit`] — all weights ±1: the gate's raw lane words are
//!   carry-save-added from plane 0, positives then negatives (the compiled
//!   edge order), with no bit-edge indirection at all;
//! * [`GateClass::Pow2`] — single-set-bit weights: exactly one shift-indexed
//!   plane addition per edge;
//! * [`GateClass::General`] — full bit-edge decomposition, with the cold
//!   per-lane `i128` fallback for gates whose weight reach exceeds the
//!   plane budget.

use crate::compiled::{CompiledCircuit, GateClass, FIRING_PLANES, WIDE_GATE};

/// Valid-lane mask for word `word` of a batch carrying `lanes` assignments.
#[inline]
pub(crate) fn word_mask(lanes: usize, word: usize) -> u64 {
    let lo = word * 64;
    if lanes >= lo + 64 {
        !0u64
    } else if lanes <= lo {
        0u64
    } else {
        (1u64 << (lanes - lo)) - 1
    }
}

/// Ripple-adds `carry` into word-column `w` of a bit-sliced counter,
/// starting at plane `i`; amortised O(1) planes touched per call.
#[inline(always)]
fn ripple_add<const W: usize>(planes: &mut [[u64; W]; 64], w: usize, mut i: usize, mut carry: u64) {
    while carry != 0 {
        let a = planes[i][w];
        planes[i][w] = a ^ carry;
        carry &= a;
        i += 1;
    }
}

/// `S = POS - NEG - t` per lane over `p` planes of word-column `w`,
/// bit-sliced; the returned mask has bit `l` set iff `S >= 0` for lane `l`.
#[inline(always)]
fn fired_word<const W: usize>(
    pos: &[[u64; W]; 64],
    neg: &[[u64; W]; 64],
    w: usize,
    p: usize,
    t: i64,
) -> u64 {
    let mut carry = !0u64; // first +1 of the two two's-complement negations
    let mut carry2 = !0u64; // second +1
    let mut sign = 0u64;
    for i in 0..p {
        let a = pos[i][w];
        let b = !neg[i][w];
        let s1 = a ^ b ^ carry;
        carry = (a & b) | (carry & (a | b));
        // Subtract the matching plane of the constant threshold.
        let tb = if (t >> i.min(63)) & 1 == 1 {
            0u64
        } else {
            !0u64
        };
        sign = s1 ^ tb ^ carry2;
        carry2 = (s1 & tb) | (carry2 & (s1 | tb));
    }
    !sign
}

impl CompiledCircuit {
    /// The width-generic kernel core: evaluates every gate over `vals`
    /// (slot-indexed `[u64; W]` lane words, constant-one and inputs already
    /// packed) and accumulates per-lane firing counts into `firing`
    /// (`FIRING_PLANES` planes, zeroed by the caller).
    ///
    /// Gate slots are written in internal `(depth, class)` order — callers
    /// translate to original gate ids through the compiled permutation.
    /// Lanes at and beyond `lanes` hold unspecified values; firing counts
    /// only accumulate valid lanes.
    pub(crate) fn run_planes<const W: usize>(
        &self,
        vals: &mut [[u64; W]],
        firing: &mut [[u64; W]],
        lanes: usize,
    ) {
        debug_assert!(vals.len() >= self.len_slots());
        debug_assert!(firing.len() >= FIRING_PLANES);
        debug_assert!(lanes <= 64 * W);
        let gate_base = 1 + self.num_inputs;
        let mut wmask = [0u64; W];
        for (w, m) in wmask.iter_mut().enumerate() {
            *m = word_mask(lanes, w);
        }
        // Per-gate carry-save accumulators for positive and negative weight
        // magnitudes, shared across every class arm.
        let mut pos = [[0u64; W]; 64];
        let mut neg = [[0u64; W]; 64];

        for &(class, seg_lo, seg_hi) in &self.segments {
            match class {
                GateClass::Unit => {
                    for g in seg_lo as usize..seg_hi as usize {
                        let p = self.batch_planes[g] as usize;
                        pos[..p].fill([0u64; W]);
                        neg[..p].fill([0u64; W]);
                        let lo = self.offsets[g] as usize;
                        let hi = self.offsets[g + 1] as usize;
                        let split = lo + self.pos_counts[g] as usize;
                        // ±1 weights: each edge is one carry-save addition of
                        // the raw lane words from plane 0 — no bit-edges, no
                        // shift decode, no sign branch.
                        for e in lo..split {
                            let mask = vals[self.wires[e] as usize];
                            for (w, &word) in mask.iter().enumerate() {
                                ripple_add(&mut pos, w, 0, word);
                            }
                        }
                        for e in split..hi {
                            let mask = vals[self.wires[e] as usize];
                            for (w, &word) in mask.iter().enumerate() {
                                ripple_add(&mut neg, w, 0, word);
                            }
                        }
                        let t = self.thresholds[g];
                        let mut fired = [0u64; W];
                        for (w, f) in fired.iter_mut().enumerate() {
                            *f = fired_word(&pos, &neg, w, p, t);
                        }
                        vals[gate_base + g] = fired;
                        for w in 0..W {
                            count_firing(firing, w, fired[w] & wmask[w]);
                        }
                    }
                }
                GateClass::Pow2 => {
                    for g in seg_lo as usize..seg_hi as usize {
                        // Single-set-bit weights: exactly one shift-indexed
                        // plane addition per edge.
                        let fired = self.fire_bit_edges(g, vals, &mut pos, &mut neg);
                        vals[gate_base + g] = fired;
                        for w in 0..W {
                            count_firing(firing, w, fired[w] & wmask[w]);
                        }
                    }
                }
                GateClass::General => {
                    for g in seg_lo as usize..seg_hi as usize {
                        let fired = if self.batch_planes[g] == WIDE_GATE {
                            self.fire_wide_lanes(g, vals, lanes)
                        } else {
                            self.fire_bit_edges(g, vals, &mut pos, &mut neg)
                        };
                        vals[gate_base + g] = fired;
                        for w in 0..W {
                            count_firing(firing, w, fired[w] & wmask[w]);
                        }
                    }
                }
            }
        }
    }

    /// Accumulates one bit-edge gate (`Pow2`/`General`, plane budget holds):
    /// ripple-adds every bit-edge's lane words at its shift, then compares
    /// against the threshold.
    #[inline(always)]
    fn fire_bit_edges<const W: usize>(
        &self,
        g: usize,
        vals: &[[u64; W]],
        pos: &mut [[u64; W]; 64],
        neg: &mut [[u64; W]; 64],
    ) -> [u64; W] {
        let p = self.batch_planes[g] as usize;
        pos[..p].fill([0u64; W]);
        neg[..p].fill([0u64; W]);
        let lo = self.bit_offsets[g] as usize;
        let hi = self.bit_offsets[g + 1] as usize;
        for e in lo..hi {
            let mask = vals[self.bit_slots[e] as usize];
            let desc = self.bit_shifts[e];
            let planes_arr = if desc & 0x80 != 0 {
                &mut *neg
            } else {
                &mut *pos
            };
            let base = (desc & 0x3F) as usize;
            for (w, &word) in mask.iter().enumerate() {
                ripple_add(planes_arr, w, base, word);
            }
        }
        let t = self.thresholds[g];
        let mut fired = [0u64; W];
        for (w, f) in fired.iter_mut().enumerate() {
            *f = fired_word(pos, neg, w, p, t);
        }
        fired
    }

    /// Wide-gate fallback: evaluates each lane with an `i128` accumulator.
    /// Only reached when a gate's weight reach exceeds the plane budget
    /// (~2^61), which no paper construction does.
    #[cold]
    fn fire_wide_lanes<const W: usize>(
        &self,
        g: usize,
        vals: &[[u64; W]],
        lanes: usize,
    ) -> [u64; W] {
        let lo = self.offsets[g] as usize;
        let hi = self.offsets[g + 1] as usize;
        let t = self.thresholds[g] as i128;
        let mut fired = [0u64; W];
        for l in 0..lanes {
            let (word, bit) = (l / 64, l % 64);
            let mut acc: i128 = 0;
            for e in lo..hi {
                if (vals[self.wires[e] as usize][word] >> bit) & 1 == 1 {
                    acc += self.weights[e] as i128;
                }
            }
            fired[word] |= ((acc >= t) as u64) << bit;
        }
        fired
    }
}

/// Ripple-adds `carry` (already masked to valid lanes) into word-column `w`
/// of the firing counter.
#[inline(always)]
fn count_firing<const W: usize>(firing: &mut [[u64; W]], w: usize, mut carry: u64) {
    let mut i = 0;
    while carry != 0 {
        let a = firing[i][w];
        firing[i][w] = a ^ carry;
        carry &= a;
        i += 1;
    }
}

/// Expands bit-sliced firing planes into per-lane counts, appending `lanes`
/// entries to `out`.
pub(crate) fn firing_counts_into<const W: usize>(
    firing: &[[u64; W]],
    lanes: usize,
    out: &mut Vec<u32>,
) {
    let start = out.len();
    out.resize(start + lanes, 0);
    let counts = &mut out[start..];
    for (k, plane) in firing.iter().enumerate().take(FIRING_PLANES) {
        for (w, &word) in plane.iter().enumerate() {
            let mut m = word & word_mask(lanes, w);
            while m != 0 {
                let l = w * 64 + m.trailing_zeros() as usize;
                counts[l] += 1 << k;
                m &= m - 1;
            }
        }
    }
}
