//! Width-generic bit-sliced evaluation: `[u64; W]` planes carrying `64·W`
//! independent input assignments per pass.
//!
//! [`CompiledCircuit::evaluate_batch64`] packs 64 assignments into one `u64`
//! lane word; this module exposes the same unified kernel (`kernel.rs`) at
//! `W` words per plane — 128, 256 or 512 lanes for `W` of 2, 4, 8 — so the
//! CSR traversal (gate offsets, edges, bit-edge descriptors) is read **once
//! per `64·W` lanes** instead of once per 64. On circuits whose edge arrays
//! spill out of cache, that traversal is the bound, and the wide widths
//! amortise it across `W` word-columns evaluated back to back while the
//! gate's metadata is hot.
//!
//! Every word-column is an independent instance of the 64-lane kernel:
//! carries never propagate between words, so lane `l` of a wide evaluation
//! is bit-identical to the scalar evaluator on assignment `l` (enforced by
//! the differential proptests in `tests/proptest_compiled.rs` for all of
//! `W ∈ {2, 4, 8}`).
//!
//! This allocating API mirrors [`crate::Batch64`] for one-shot callers; the
//! serving hot path packs rows straight into a reusable [`crate::PlaneArena`]
//! via [`CompiledCircuit::evaluate_rows_arena`] instead.

use crate::compiled::FIRING_PLANES;
use crate::eval::Evaluation;
use crate::kernel::firing_counts_into;
use crate::{CircuitError, CompiledCircuit, Result};

/// Packed input assignments for the width-generic kernel: one `[u64; W]`
/// plane per primary input, bit `l % 64` of word `l / 64` carrying
/// assignment `l`'s value.
///
/// Unlike [`crate::Batch64`], an empty batch is representable: packing zero
/// rows succeeds and evaluates to a zero-lane [`WideEvaluation`].
#[derive(Debug, Clone)]
pub struct BatchWide<const W: usize> {
    num_inputs: usize,
    lanes: usize,
    masks: Vec<[u64; W]>,
}

/// 128-lane batch (`[u64; 2]` planes).
pub type Batch128 = BatchWide<2>;
/// 256-lane batch (`[u64; 4]` planes).
pub type Batch256 = BatchWide<4>;
/// 512-lane batch (`[u64; 8]` planes).
pub type Batch512 = BatchWide<8>;

impl<const W: usize> BatchWide<W> {
    /// Number of lanes one batch of this width can carry.
    pub const LANES: usize = 64 * W;

    /// Packs up to `64·W` assignments (each of `num_inputs` bits). Zero rows
    /// are allowed; partial batches occupy the low lanes.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::BatchTooWide`] for more than `64·W` assignments;
    /// * [`CircuitError::InputLengthMismatch`] if any row has the wrong
    ///   length.
    pub fn pack<R: AsRef<[bool]>>(num_inputs: usize, rows: &[R]) -> Result<Self> {
        if rows.len() > Self::LANES {
            return Err(CircuitError::BatchTooWide { rows: rows.len() });
        }
        let mut masks = vec![[0u64; W]; num_inputs];
        for (lane, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            if row.len() != num_inputs {
                return Err(CircuitError::InputLengthMismatch {
                    expected: num_inputs,
                    actual: row.len(),
                });
            }
            let (word, bit) = (lane / 64, lane % 64);
            for (i, &value) in row.iter().enumerate() {
                masks[i][word] |= (value as u64) << bit;
            }
        }
        Ok(BatchWide {
            num_inputs,
            lanes: rows.len(),
            masks,
        })
    }

    /// Number of packed assignments (0..=`64·W`).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of primary inputs per assignment.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }
}

impl CompiledCircuit {
    /// Evaluates up to `64·W` independent input assignments in one pass of
    /// the unified width-generic bit-sliced kernel (the `W = 1`
    /// instantiation of which is [`CompiledCircuit::evaluate_batch64`]).
    ///
    /// Lane `l` of the result is bit-identical to `evaluate(&rows[l])` —
    /// values, outputs, and firing counts. See the [module docs](self) for
    /// why widening the planes pays: one CSR traversal feeds `W` word-columns.
    pub fn evaluate_batch_wide<const W: usize>(
        &self,
        batch: &BatchWide<W>,
    ) -> Result<WideEvaluation> {
        if batch.num_inputs != self.num_inputs {
            return Err(CircuitError::InputLengthMismatch {
                expected: self.num_inputs,
                actual: batch.num_inputs,
            });
        }
        let lanes = batch.lanes;
        let slots = self.len_slots();
        if lanes == 0 {
            return Ok(WideEvaluation {
                lanes: 0,
                words: W,
                num_inputs: self.num_inputs,
                vals: vec![0u64; slots * W],
                output_slots: self.outputs.clone(),
                perm: self.perm.clone(),
                firing_counts: Vec::new(),
            });
        }

        let mut vals = vec![[0u64; W]; slots];
        vals[0] = [!0u64; W];
        vals[1..=self.num_inputs].copy_from_slice(&batch.masks);
        let mut firing = [[0u64; W]; FIRING_PLANES];
        self.run_planes::<W>(&mut vals, &mut firing, lanes);

        let mut firing_counts = Vec::with_capacity(lanes);
        firing_counts_into::<W>(&firing, lanes, &mut firing_counts);

        // Hand the flat slot array to the evaluation; dead lanes are never
        // exposed (every accessor bounds-checks against `lanes`).
        let mut flat = Vec::with_capacity(slots * W);
        for slot in &vals {
            flat.extend_from_slice(slot);
        }
        Ok(WideEvaluation {
            lanes,
            words: W,
            num_inputs: self.num_inputs,
            vals: flat,
            output_slots: self.outputs.clone(),
            perm: self.perm.clone(),
            firing_counts,
        })
    }
}

/// The result of a width-generic batch evaluation.
///
/// Stores the kernel's flat slot array (constant-one wire, inputs, gates —
/// `words` lane words per slot) rather than copying per-gate masks out; all
/// accessors bounds-check the lane against the batch's assignment count, so
/// garbage in dead tail lanes is never observable.
#[derive(Debug, Clone)]
pub struct WideEvaluation {
    lanes: usize,
    words: usize,
    num_inputs: usize,
    /// Slot-major lane words: slot `s` occupies `vals[s*words..(s+1)*words]`.
    vals: Vec<u64>,
    /// Slot index of each designated output.
    output_slots: Vec<u32>,
    /// Original gate id → internal slot offset (shared with the compiled
    /// circuit, so no per-evaluation allocation): gate `g` lives in slot
    /// `1 + num_inputs + perm[g]`.
    perm: std::sync::Arc<[u32]>,
    firing_counts: Vec<u32>,
}

impl WideEvaluation {
    /// Number of valid lanes (the batch's assignment count).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lane words per slot (the batch width `W`).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    fn check_lane(&self, lane: usize) -> Result<()> {
        if lane >= self.lanes {
            return Err(CircuitError::LaneOutOfRange {
                lane,
                lanes: self.lanes,
            });
        }
        Ok(())
    }

    #[inline]
    fn slot_bit(&self, slot: usize, lane: usize) -> bool {
        (self.vals[slot * self.words + lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// The value of output `i` for assignment `lane`.
    pub fn output(&self, lane: usize, i: usize) -> Result<bool> {
        self.check_lane(lane)?;
        let slot = *self
            .output_slots
            .get(i)
            .ok_or(CircuitError::OutputIndexOutOfRange {
                index: i,
                len: self.output_slots.len(),
            })?;
        Ok(self.slot_bit(slot as usize, lane))
    }

    /// All designated output values for assignment `lane`.
    pub fn outputs(&self, lane: usize) -> Result<Vec<bool>> {
        self.check_lane(lane)?;
        Ok(self
            .output_slots
            .iter()
            .map(|&s| self.slot_bit(s as usize, lane))
            .collect())
    }

    /// Every gate's value for assignment `lane`, in ORIGINAL gate order.
    pub fn gate_values(&self, lane: usize) -> Result<Vec<bool>> {
        self.check_lane(lane)?;
        Ok(self
            .perm
            .iter()
            .map(|&i| self.slot_bit(1 + self.num_inputs + i as usize, lane))
            .collect())
    }

    /// Number of gates that fired for assignment `lane`.
    pub fn firing_count(&self, lane: usize) -> Result<u32> {
        self.check_lane(lane)?;
        Ok(self.firing_counts[lane])
    }

    /// Expands one lane into a full [`Evaluation`], identical to what the
    /// scalar evaluator returns for that assignment.
    pub fn evaluation(&self, lane: usize) -> Result<Evaluation> {
        Ok(Evaluation::from_parts(
            self.gate_values(lane)?,
            self.outputs(lane)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, Wire};

    fn adder_circuit() -> CompiledCircuit {
        let mut b = CircuitBuilder::new(3);
        let x = Wire::input(0);
        let y = Wire::input(1);
        let z = Wire::input(2);
        let carry = b.add_gate([(x, 1), (y, 1), (z, 1)], 2).unwrap();
        let sum = b
            .add_gate([(x, 1), (y, 1), (z, 1), (carry, -2)], 1)
            .unwrap();
        let veto = b.add_gate([(Wire::One, 3), (sum, -3)], 3).unwrap();
        b.mark_output(sum);
        b.mark_output(carry);
        b.mark_output(veto);
        b.build().compile().unwrap()
    }

    fn exhaustive_rows(bits: usize) -> Vec<Vec<bool>> {
        (0..1u32 << bits)
            .map(|v| (0..bits).map(|b| (v >> b) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn wide_lanes_match_scalar_for_all_widths() {
        let cc = adder_circuit();
        // Exhaustive rows cycled to 130 lanes — a ragged count spanning
        // three words of a Batch256.
        let rows: Vec<Vec<bool>> = exhaustive_rows(3).into_iter().cycle().take(130).collect();
        let batch = Batch256::pack(3, &rows).unwrap();
        let wev = cc.evaluate_batch_wide(&batch).unwrap();
        assert_eq!(wev.lanes(), 130);
        for (lane, row) in rows.iter().enumerate() {
            let scalar = cc.evaluate(row).unwrap();
            assert_eq!(scalar, wev.evaluation(lane).unwrap(), "lane {lane}");
            assert_eq!(
                scalar.firing_count(),
                wev.firing_count(lane).unwrap() as usize,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn empty_batches_are_representable() {
        let cc = adder_circuit();
        let empty: &[Vec<bool>] = &[];
        let batch = Batch128::pack(3, empty).unwrap();
        let wev = cc.evaluate_batch_wide(&batch).unwrap();
        assert_eq!(wev.lanes(), 0);
        assert!(matches!(
            wev.output(0, 0),
            Err(CircuitError::LaneOutOfRange { .. })
        ));
    }

    #[test]
    fn over_wide_batches_are_rejected() {
        let rows: Vec<[bool; 1]> = (0..129).map(|_| [false]).collect();
        assert!(matches!(
            Batch128::pack(1, &rows),
            Err(CircuitError::BatchTooWide { rows: 129 })
        ));
    }

    #[test]
    fn mismatched_input_width_is_rejected() {
        let cc = adder_circuit();
        let batch = Batch128::pack(2, &[[true, false]]).unwrap();
        assert!(matches!(
            cc.evaluate_batch_wide(&batch),
            Err(CircuitError::InputLengthMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn extreme_weights_take_the_wide_fallback() {
        let mut b = CircuitBuilder::new(2);
        let g = b
            .add_gate([(Wire::input(0), i64::MAX), (Wire::input(1), i64::MAX)], 1)
            .unwrap();
        let h = b.add_gate([(Wire::input(0), i64::MIN), (g, 1)], 0).unwrap();
        b.mark_outputs([g, h]);
        let cc = b.build().compile().unwrap();
        let rows: Vec<Vec<bool>> = (0..100u32).map(|v| vec![v & 1 != 0, v & 2 != 0]).collect();
        let batch = Batch128::pack(2, &rows).unwrap();
        let wev = cc.evaluate_batch_wide(&batch).unwrap();
        for (lane, row) in rows.iter().enumerate() {
            assert_eq!(
                cc.evaluate(row).unwrap(),
                wev.evaluation(lane).unwrap(),
                "lane {lane}"
            );
        }
    }
}
