//! # tc-circuit — a threshold-gate circuit substrate
//!
//! This crate provides the data structures and algorithms for building, validating,
//! analysing and evaluating Boolean circuits made of *linear threshold gates* (the
//! classic McCulloch–Pitts neuron model).  A threshold gate with binary inputs
//! `y_1, …, y_m`, integer weights `w_1, …, w_m` and integer threshold `t` outputs `1`
//! if and only if `Σ w_i · y_i ≥ t`.
//!
//! The crate is the substrate on which the constructions of
//! *Parekh, Phillips, James, Aimone — "Constant-Depth and Subcubic-Size Threshold
//! Circuits for Matrix Multiplication" (SPAA 2018)* are implemented (see the
//! `tc-arith` and `tcmm-core` crates).
//!
//! ## Model
//!
//! * A [`Wire`] is either one of the circuit's primary inputs, the output of a
//!   previously-created gate, or the constant-one wire.
//! * A [`ThresholdGate`] owns its fan-in list of `(Wire, weight)` pairs and its
//!   threshold.
//! * A [`Circuit`] is a topologically-ordered list of gates over a fixed number of
//!   primary inputs, plus a list of designated output wires.
//! * The [`CircuitBuilder`] is the only way to construct circuits; it enforces
//!   topological order (gates may only reference already-existing wires) and can
//!   optionally deduplicate structurally identical gates.
//!
//! ## Complexity measures
//!
//! [`CircuitStats`] reports the measures used throughout the paper: *size* (number of
//! gates), *depth* (longest input→output path, counted in gates), *edges* (total number
//! of gate input connections) and *fan-in* (maximum number of inputs to any gate).
//!
//! ## Evaluation
//!
//! Evaluation runs on the compiled execution engine: [`Circuit::compile`]
//! lowers the builder-friendly gate list into flat CSR arrays once, and the
//! resulting [`CompiledCircuit`] hosts three evaluators behind one API —
//! sequential ([`CompiledCircuit::evaluate`]), layer-parallel
//! ([`CompiledCircuit::evaluate_parallel`], OS threads over each depth
//! layer), and the bit-sliced [`CompiledCircuit::evaluate_batch64`], which
//! processes up to 64 independent input assignments per pass using `u64`
//! lanes.  All three produce identical results (evaluation of a threshold
//! circuit is deterministic); [`Circuit::evaluate`] and
//! [`Circuit::evaluate_parallel`] remain as convenience wrappers that
//! compile on the fly.
//!
//! ```
//! use tc_circuit::{CircuitBuilder, Wire};
//!
//! // A 2-input AND gate followed by a NOT gate, as threshold gates.
//! let mut b = CircuitBuilder::new(2);
//! let x = Wire::input(0);
//! let y = Wire::input(1);
//! let and = b.add_gate([(x, 1), (y, 1)], 2).unwrap();
//! let not = b.add_gate([(and, -1)], 0).unwrap();
//! b.mark_output(not);
//! let circuit = b.build();
//!
//! assert_eq!(circuit.evaluate(&[true, true]).unwrap().outputs(), &[false]);
//! assert_eq!(circuit.evaluate(&[true, false]).unwrap().outputs(), &[true]);
//! assert_eq!(circuit.stats().depth, 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arena;
mod builder;
pub mod canon;
mod circuit;
mod compiled;
mod dot;
mod error;
mod eval;
mod gate;
mod kernel;
pub mod simd;
mod stats;
pub mod verify;
mod wide;
mod wire;

pub use arena::{ArenaEvaluation, PlaneArena};
pub use builder::{CircuitBuilder, DedupPolicy};
pub use canon::{canonical_gate, CANON_VERSION};
pub use circuit::Circuit;
pub use compiled::{
    Batch64, BatchEvaluation, CompiledCircuit, GateClass, ManyEvaluation, BATCH_LANES,
};
pub use error::CircuitError;
pub use eval::{EvalOptions, Evaluation};
pub use gate::ThresholdGate;
pub use stats::{CircuitStats, LayerStats};
pub use verify::{
    verify_against, verify_compiled, Bound, Finding, FindingKind, PaperBound, Severity,
    VerifyReport,
};
pub use wide::{Batch128, Batch256, Batch512, BatchWide, WideEvaluation};
pub use wire::Wire;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CircuitError>;
