//! Checked, incremental construction of threshold circuits.

use crate::{Circuit, CircuitError, Result, ThresholdGate, Wire};
use std::collections::HashMap;

/// Whether the builder should merge structurally identical gates.
///
/// Two gates are structurally identical when they have the same (wire, weight) fan-in
/// list (order-insensitive; the builder canonicalises by sorting) and the same
/// threshold.  Deduplication never changes the function computed by the circuit, only
/// its size, and is disabled by default so that gate counts match the paper's
/// constructions exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupPolicy {
    /// Keep every gate that is added (paper-faithful gate counts).
    #[default]
    KeepDuplicates,
    /// Return the existing wire when an identical gate has already been added.
    MergeStructural,
}

/// Incremental builder for [`Circuit`]s.
///
/// The builder enforces the topological-order invariant: a gate can only reference
/// primary inputs, the constant-one wire, and gates added before it.
///
/// ```
/// use tc_circuit::{CircuitBuilder, Wire};
/// let mut b = CircuitBuilder::new(2);
/// let or = b.add_gate([(Wire::input(0), 1), (Wire::input(1), 1)], 1).unwrap();
/// b.mark_output(or);
/// let circuit = b.build();
/// assert_eq!(circuit.num_gates(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    num_inputs: usize,
    gates: Vec<ThresholdGate>,
    depths: Vec<u32>,
    outputs: Vec<Wire>,
    dedup: DedupPolicy,
    seen: HashMap<(Vec<(Wire, i64)>, i64), u32>,
}

impl CircuitBuilder {
    /// Creates a builder for a circuit over `num_inputs` primary inputs.
    pub fn new(num_inputs: usize) -> Self {
        CircuitBuilder {
            num_inputs,
            gates: Vec::new(),
            depths: Vec::new(),
            outputs: Vec::new(),
            dedup: DedupPolicy::KeepDuplicates,
            seen: HashMap::new(),
        }
    }

    /// Creates a builder with an explicit deduplication policy.
    pub fn with_dedup(num_inputs: usize, dedup: DedupPolicy) -> Self {
        CircuitBuilder {
            dedup,
            ..CircuitBuilder::new(num_inputs)
        }
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of gates added so far.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Depth of the (partial) circuit built so far.
    #[inline]
    pub fn current_depth(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// Depth of an arbitrary wire: 0 for inputs and the constant-one wire, the gate's
    /// depth for gate wires.
    pub fn wire_depth(&self, wire: Wire) -> u32 {
        match wire {
            Wire::Input(_) | Wire::One => 0,
            Wire::Gate(i) => self.depths.get(i as usize).copied().unwrap_or(0),
        }
    }

    /// Adds a threshold gate with the given fan-in and threshold and returns its output
    /// wire.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::EmptyFanIn`] if `inputs` is empty;
    /// * [`CircuitError::DanglingWire`] if any referenced wire does not exist yet;
    /// * [`CircuitError::DuplicateFanIn`] if the same wire appears twice (callers should
    ///   combine weights instead).
    pub fn add_gate<I>(&mut self, inputs: I, threshold: i64) -> Result<Wire>
    where
        I: IntoIterator<Item = (Wire, i64)>,
    {
        let mut fan_in: Vec<(Wire, i64)> = inputs.into_iter().collect();
        if fan_in.is_empty() {
            return Err(CircuitError::EmptyFanIn);
        }
        // Canonical order, also used for duplicate detection and structural dedup.
        fan_in.sort_unstable_by_key(|&(w, _)| w);
        for pair in fan_in.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(CircuitError::DuplicateFanIn { wire: pair[0].0 });
            }
        }
        let mut depth = 0u32;
        for &(wire, _) in &fan_in {
            match wire {
                Wire::Input(i) => {
                    if i as usize >= self.num_inputs {
                        return Err(self.dangling(wire));
                    }
                }
                Wire::Gate(i) => {
                    if i as usize >= self.gates.len() {
                        return Err(self.dangling(wire));
                    }
                    depth = depth.max(self.depths[i as usize]);
                }
                Wire::One => {}
            }
        }

        if self.dedup == DedupPolicy::MergeStructural {
            let key = (fan_in.clone(), threshold);
            if let Some(&idx) = self.seen.get(&key) {
                return Ok(Wire::Gate(idx));
            }
            let idx = self.push_gate(fan_in, threshold, depth + 1);
            self.seen.insert(key, idx);
            Ok(Wire::Gate(idx))
        } else {
            let idx = self.push_gate(fan_in, threshold, depth + 1);
            Ok(Wire::Gate(idx))
        }
    }

    /// Adds a gate that combines weighted *wire sums*: convenience wrapper that accepts
    /// weights accumulated in a map-like slice and merges duplicate wires by summing
    /// their weights (dropping zero weights).
    ///
    /// This is the entry point used by the arithmetic constructions, where the same wire
    /// naturally appears several times in a linear combination.
    pub fn add_gate_merged<I>(&mut self, inputs: I, threshold: i64) -> Result<Wire>
    where
        I: IntoIterator<Item = (Wire, i64)>,
    {
        let mut acc: HashMap<Wire, i64> = HashMap::new();
        for (w, c) in inputs {
            *acc.entry(w).or_insert(0) += c;
        }
        let merged: Vec<(Wire, i64)> = acc.into_iter().filter(|&(_, c)| c != 0).collect();
        if merged.is_empty() {
            // The linear form is identically zero; the gate fires iff 0 >= threshold,
            // which is a constant.  Represent it with the constant-one wire so the
            // result is still a valid gate.
            return self.add_gate([(Wire::One, 0)], threshold);
        }
        self.add_gate(merged, threshold)
    }

    /// Marks a wire as a circuit output.  Outputs may be marked multiple times and in
    /// any order; they are reported in marking order.
    pub fn mark_output(&mut self, wire: Wire) {
        self.outputs.push(wire);
    }

    /// Marks several output wires at once.
    pub fn mark_outputs<I: IntoIterator<Item = Wire>>(&mut self, wires: I) {
        self.outputs.extend(wires);
    }

    /// Finishes construction and returns the immutable circuit.
    pub fn build(self) -> Circuit {
        Circuit::from_parts(self.num_inputs, self.gates, self.outputs, self.depths)
    }

    fn push_gate(&mut self, fan_in: Vec<(Wire, i64)>, threshold: i64, depth: u32) -> u32 {
        let idx = self.gates.len() as u32;
        self.gates.push(ThresholdGate::new(fan_in, threshold));
        self.depths.push(depth);
        idx
    }

    fn dangling(&self, wire: Wire) -> CircuitError {
        CircuitError::DanglingWire {
            wire,
            num_inputs: self.num_inputs,
            num_gates: self.gates.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_fan_in() {
        let mut b = CircuitBuilder::new(1);
        assert_eq!(b.add_gate([], 0).unwrap_err(), CircuitError::EmptyFanIn);
    }

    #[test]
    fn rejects_unknown_input_wire() {
        let mut b = CircuitBuilder::new(2);
        let err = b.add_gate([(Wire::input(2), 1)], 1).unwrap_err();
        assert!(matches!(err, CircuitError::DanglingWire { .. }));
    }

    #[test]
    fn rejects_forward_gate_reference() {
        let mut b = CircuitBuilder::new(1);
        let err = b.add_gate([(Wire::gate(0), 1)], 1).unwrap_err();
        assert!(matches!(err, CircuitError::DanglingWire { .. }));
    }

    #[test]
    fn rejects_duplicate_wire_in_fan_in() {
        let mut b = CircuitBuilder::new(1);
        let err = b
            .add_gate([(Wire::input(0), 1), (Wire::input(0), 2)], 1)
            .unwrap_err();
        assert_eq!(
            err,
            CircuitError::DuplicateFanIn {
                wire: Wire::input(0)
            }
        );
    }

    #[test]
    fn merged_gate_combines_weights() {
        let mut b = CircuitBuilder::new(1);
        let w = b
            .add_gate_merged([(Wire::input(0), 1), (Wire::input(0), 2)], 3)
            .unwrap();
        let c = {
            let mut b = b;
            b.mark_output(w);
            b.build()
        };
        // merged weight 3 with threshold 3: fires iff x = 1.
        assert_eq!(c.evaluate(&[true]).unwrap().outputs(), &[true]);
        assert_eq!(c.evaluate(&[false]).unwrap().outputs(), &[false]);
        assert_eq!(c.gates()[0].fan_in(), 1);
    }

    #[test]
    fn merged_gate_with_all_zero_weights_becomes_constant() {
        let mut b = CircuitBuilder::new(1);
        let w = b
            .add_gate_merged([(Wire::input(0), 1), (Wire::input(0), -1)], 0)
            .unwrap();
        b.mark_output(w);
        let c = b.build();
        // 0 >= 0 is always true.
        assert_eq!(c.evaluate(&[false]).unwrap().outputs(), &[true]);
        assert_eq!(c.evaluate(&[true]).unwrap().outputs(), &[true]);
    }

    #[test]
    fn depth_tracking_follows_longest_path() {
        let mut b = CircuitBuilder::new(1);
        let x = Wire::input(0);
        let g1 = b.add_gate([(x, 1)], 1).unwrap();
        let g2 = b.add_gate([(g1, 1)], 1).unwrap();
        let g3 = b.add_gate([(x, 1), (g2, 1)], 1).unwrap();
        assert_eq!(b.wire_depth(x), 0);
        assert_eq!(b.wire_depth(g1), 1);
        assert_eq!(b.wire_depth(g2), 2);
        assert_eq!(b.wire_depth(g3), 3);
        assert_eq!(b.current_depth(), 3);
    }

    #[test]
    fn dedup_merges_identical_gates_only_when_enabled() {
        let make = |policy| {
            let mut b = CircuitBuilder::with_dedup(2, policy);
            let g1 = b
                .add_gate([(Wire::input(0), 1), (Wire::input(1), 1)], 2)
                .unwrap();
            // Same gate, fan-in given in the opposite order.
            let g2 = b
                .add_gate([(Wire::input(1), 1), (Wire::input(0), 1)], 2)
                .unwrap();
            (g1, g2, b.num_gates())
        };
        let (g1, g2, n) = make(DedupPolicy::MergeStructural);
        assert_eq!(g1, g2);
        assert_eq!(n, 1);
        let (g1, g2, n) = make(DedupPolicy::KeepDuplicates);
        assert_ne!(g1, g2);
        assert_eq!(n, 2);
    }

    #[test]
    fn constant_one_wire_is_always_available() {
        let mut b = CircuitBuilder::new(0);
        let g = b.add_gate([(Wire::One, 1)], 1).unwrap();
        b.mark_output(g);
        let c = b.build();
        assert_eq!(c.evaluate(&[]).unwrap().outputs(), &[true]);
    }
}
