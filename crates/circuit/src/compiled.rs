//! The compiled execution engine: CSR-lowered circuits with scalar,
//! layer-parallel, and bit-sliced batch evaluators.
//!
//! [`Circuit`] is builder-friendly: every gate owns a `Vec<(Wire, i64)>`, so
//! evaluating it chases pointers and re-resolves wires through an enum on
//! every edge. [`CompiledCircuit`] lowers that form once into flat
//! compressed-sparse-row (CSR) arrays:
//!
//! * one contiguous *slot* space — slot `0` is the constant-one wire, slots
//!   `1..=I` the primary inputs, slots `I+1..` the gates — so every evaluator
//!   reads values from a single flat array with `u32` indices;
//! * per-gate fan-in offsets into contiguous `wires` / `weights` arrays;
//! * an internal gate numbering sorted by `(depth, gate class)` so each depth
//!   layer occupies a contiguous slot range and the batch kernel runs
//!   straight-line loops per [`GateClass`] segment (public accessors keep
//!   speaking original gate ids; the permutation is invisible outside);
//! * per-gate *bit-edges* — each weight decomposed into its set bits — for
//!   [`GateClass::Pow2`] and [`GateClass::General`] gates only;
//!   [`GateClass::Unit`] gates (all weights ±1, the majority-style gates that
//!   dominate the paper's constructions) are evaluated straight off the raw
//!   CSR edges with their positive edges ordered first.
//!
//! All evaluators — scalar, layer-parallel, and the width-generic bit-sliced
//! kernel behind [`CompiledCircuit::evaluate_batch64`] /
//! [`CompiledCircuit::evaluate_batch_wide`] (see `kernel.rs`) — produce
//! bit-identical [`Evaluation`]s (and firing counts) for the same inputs;
//! the differential proptest suites in `tests/proptest_compiled.rs` and
//! `tests/proptest_classes.rs` assert this gate-for-gate.
//!
//! ## Compile once, evaluate many
//!
//! ```
//! use tc_circuit::{Batch64, CircuitBuilder, Wire};
//!
//! let mut b = CircuitBuilder::new(2);
//! let g = b.add_gate([(Wire::input(0), 1), (Wire::input(1), 1)], 2).unwrap();
//! b.mark_output(g);
//! let compiled = b.build().compile().unwrap();
//!
//! // 4 assignments ride in one 64-lane batch.
//! let rows = [[false, false], [false, true], [true, false], [true, true]];
//! let batch = Batch64::pack(2, &rows).unwrap();
//! let ev = compiled.evaluate_batch64(&batch).unwrap();
//! assert_eq!((0..4).map(|l| ev.output(l, 0).unwrap() as u32).sum::<u32>(), 1);
//! ```

use crate::canon;
use crate::eval::{EvalOptions, Evaluation};
use crate::stats::CircuitStats;
use crate::{Circuit, CircuitError, Result, Wire};

/// Bit-sliced batch width: one `u64` lane per input assignment.
pub const BATCH_LANES: usize = 64;

/// Planes of the bit-sliced firing counter (supports circuits of up to
/// `2^FIRING_PLANES` gates).
pub(crate) const FIRING_PLANES: usize = 40;

/// Sentinel in `batch_planes` marking a gate that needs the wide (per-lane
/// `i128`) fallback instead of the carry-save plane kernel.
pub(crate) const WIDE_GATE: u8 = u8::MAX;

/// Kernel dispatch class of a compiled gate.
///
/// Classification is decided once at compile time from the gate's weights
/// (and its plane budget) and drives which straight-line loop of the batch
/// kernel evaluates the gate:
///
/// * [`GateClass::Unit`] — every weight is `+1` or `-1` (the majority-style
///   gates that dominate the paper's Lemma 3.1 dot-product blocks and MAJ
///   reductions). Evaluated by popcount-style carry-save addition over the
///   raw CSR lane words: no bit-edge expansion, no per-edge shift decode.
/// * [`GateClass::Pow2`] — every weight magnitude has a single set bit, so
///   each edge is exactly one shift-indexed plane addition.
/// * [`GateClass::General`] — everything else: weights decompose into
///   multiple bit-edges (or the gate's weight reach exceeds the plane budget
///   and it takes the per-lane `i128` fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateClass {
    /// All weights ±1: raw-lane carry-save addition, no bit-edges.
    Unit,
    /// All weight magnitudes are powers of two: one bit-edge per edge.
    Pow2,
    /// Arbitrary weights: full bit-edge decomposition (or wide fallback).
    General,
}

impl GateClass {
    /// Classifies a gate from its weights and plane budget. `planes` is the
    /// gate's `batch_planes` entry ([`WIDE_GATE`] demotes to `General`).
    pub(crate) fn classify<I: Iterator<Item = i64> + Clone>(weights: I, planes: u8) -> Self {
        if planes == WIDE_GATE {
            return GateClass::General;
        }
        if weights.clone().all(|w| w == 1 || w == -1) {
            GateClass::Unit
        } else if weights
            .clone()
            .all(|w| w != 0 && w.unsigned_abs().is_power_of_two())
        {
            GateClass::Pow2
        } else {
            GateClass::General
        }
    }

    /// Index into per-class arrays (`[Unit, Pow2, General]`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            GateClass::Unit => 0,
            GateClass::Pow2 => 1,
            GateClass::General => 2,
        }
    }
}

/// A [`Circuit`] lowered to flat CSR arrays with a precomputed layer
/// schedule, hosting the scalar, layer-parallel and bit-sliced batch
/// evaluators behind one API.
///
/// Internally gates are renumbered so that each depth layer is a contiguous
/// slot range and, inside a layer, gates of the same [`GateClass`] are
/// adjacent. Every public accessor and every returned [`Evaluation`] speaks
/// *original* gate ids; `perm`/`inv` translate at the boundary.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    pub(crate) num_inputs: usize,
    /// Gate fan-in offsets (internal order): edges of internal gate `g` are
    /// `offsets[g]..offsets[g+1]`.
    pub(crate) offsets: Vec<u32>,
    /// Slot-encoded fan-in wires, contiguous across gates. Within each gate
    /// the non-negative-weight edges come first (see `pos_counts`).
    pub(crate) wires: Vec<u32>,
    /// Fan-in weights, parallel to `wires`.
    pub(crate) weights: Vec<i64>,
    /// Per-gate count of leading non-negative-weight edges (internal order);
    /// the `Unit` kernel splits its pos/neg accumulation at this point.
    pub(crate) pos_counts: Vec<u32>,
    /// Per-gate firing thresholds (internal order).
    pub(crate) thresholds: Vec<i64>,
    /// Per-gate depth (1-based), in ORIGINAL gate order.
    pub(crate) depths: Vec<u32>,
    /// ORIGINAL gate ids grouped by depth layer; `layer_ranges[d]` indexes
    /// into it (the public [`CompiledCircuit::layer`] view).
    pub(crate) schedule: Vec<u32>,
    /// Half-open ranges, one per depth layer. Because the internal numbering
    /// is depth-major, `layer_ranges[d]` is *also* the internal gate-id range
    /// of layer `d`.
    pub(crate) layer_ranges: Vec<(u32, u32)>,
    /// Slot-encoded designated outputs.
    pub(crate) outputs: Vec<u32>,
    /// Per-gate flag (internal order): the weighted sum provably fits `i64`.
    pub(crate) narrow: Vec<bool>,
    /// Bit-edge offsets (internal order; `Unit` gates span zero bit-edges).
    pub(crate) bit_offsets: Vec<u32>,
    /// Slot of each bit-edge.
    pub(crate) bit_slots: Vec<u32>,
    /// Packed bit-edge descriptor: low 6 bits = shift, bit 7 = negative sign.
    pub(crate) bit_shifts: Vec<u8>,
    /// Planes needed by the batch kernel per gate, or [`WIDE_GATE`].
    pub(crate) batch_planes: Vec<u8>,
    /// Per-gate class (internal order).
    pub(crate) classes: Vec<GateClass>,
    /// Maximal runs of equal class in internal order: `(class, lo, hi)`.
    pub(crate) segments: Vec<(GateClass, u32, u32)>,
    /// Gates per class (`[Unit, Pow2, General]`), post-canonicalization —
    /// the mix the kernel actually runs.
    pub(crate) class_counts: [usize; 3],
    /// Gates per class as classified from the *raw* builder weights, before
    /// the canonicalization pass rewrote them (see `canon.rs`).
    pub(crate) class_counts_pre: [usize; 3],
    /// Gates whose compiled form differs from their raw form (GCD-factored
    /// weights and/or a shorter signed-digit bit-edge decomposition).
    pub(crate) canon_gates: usize,
    /// Plane-addition operations one batch pass performs per class:
    /// raw edges for `Unit`, bit-edges for `Pow2`/`General`.
    pub(crate) class_plane_ops: [u64; 3],
    /// ORIGINAL gate id → internal gate id. Shared (`Arc`) so evaluations
    /// that must translate slots back to original ids borrow it for free.
    pub(crate) perm: std::sync::Arc<[u32]>,
    /// Internal gate id → ORIGINAL gate id.
    pub(crate) inv: Vec<u32>,
}

#[inline]
fn slot_of(wire: Wire, num_inputs: usize, perm: &[u32]) -> usize {
    match wire {
        Wire::One => 0,
        Wire::Input(i) => 1 + i as usize,
        Wire::Gate(g) => 1 + num_inputs + perm[g as usize] as usize,
    }
}

impl CompiledCircuit {
    /// Lowers a circuit into its compiled form.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::DanglingWire`] if the circuit violates the
    ///   topological invariant (possible for hand-assembled or deserialised
    ///   circuits; builder output always lowers cleanly);
    /// * [`CircuitError::CircuitTooLarge`] if inputs + gates exceed the
    ///   `u32` slot space.
    pub fn new(circuit: &Circuit) -> Result<Self> {
        let num_inputs = circuit.num_inputs();
        let num_gates = circuit.num_gates();
        let slots = 1usize + num_inputs + num_gates;
        if slots > u32::MAX as usize {
            return Err(CircuitError::CircuitTooLarge {
                inputs: num_inputs,
                gates: num_gates,
            });
        }

        // Planes so that POS, NEG and POS - NEG - t all fit a signed
        // `planes`-bit two's-complement integer, given the reach (sum of all
        // accumulated digit magnitudes plus |t|).
        let planes_for = |reach: i128| -> u8 {
            let needed = 128 - (reach + 1).leading_zeros() + 2;
            if (needed as usize) < BATCH_LANES {
                // lint:allow(narrowing-cast): guarded below BATCH_LANES = 64
                needed as u8
            } else {
                WIDE_GATE
            }
        };

        // ── Pass 1 (original order): validate fan-in wires, recompute
        // depths from the fan-ins (authoritative even for hand-assembled
        // circuits), canonicalize weights (GCD factoring + CSD bit-edge
        // recoding; see `canon.rs`), and classify every gate before and
        // after the rewrite.
        let mut depths = vec![0u32; num_gates];
        let mut per_gate_planes = Vec::with_capacity(num_gates);
        let mut per_gate_narrow = Vec::with_capacity(num_gates);
        let mut per_gate_class = Vec::with_capacity(num_gates);
        let mut per_gate_csd = Vec::with_capacity(num_gates);
        let mut rewrites: Vec<Option<(Vec<i64>, i64)>> = Vec::with_capacity(num_gates);
        let mut class_counts_pre = [0usize; 3];
        let mut canon_gates = 0usize;
        let mut wbuf: Vec<i64> = Vec::new();
        let mut dbuf: Vec<canon::Digit> = Vec::new();
        for (idx, gate) in circuit.gates().iter().enumerate() {
            let mut pos_sum: i128 = 0;
            let mut neg_sum: i128 = 0;
            let mut depth_in = 0u32;
            wbuf.clear();
            for &(wire, weight) in gate.inputs() {
                let valid = match wire {
                    Wire::Input(i) => (i as usize) < num_inputs,
                    Wire::Gate(g) => (g as usize) < idx,
                    Wire::One => true,
                };
                if !valid {
                    return Err(CircuitError::DanglingWire {
                        wire,
                        num_inputs,
                        num_gates: idx,
                    });
                }
                if let Wire::Gate(g) = wire {
                    depth_in = depth_in.max(depths[g as usize]);
                }
                wbuf.push(weight);
                if weight >= 0 {
                    pos_sum += weight as i128;
                } else {
                    neg_sum += -(weight as i128);
                }
            }
            depths[idx] = depth_in + 1;
            let t = gate.threshold();

            // Pre-canonicalization class: what the kernel would have run
            // without the rewrite (observable via `class_counts_pre`).
            let planes_pre = planes_for(pos_sum + neg_sum + (t.unsigned_abs() as i128));
            let class_pre = GateClass::classify(wbuf.iter().copied(), planes_pre);
            class_counts_pre[class_pre.index()] += 1;

            // GCD factoring; `None` leaves the gate's weights untouched.
            let rewrite = canon::canonical_gate(&wbuf, t);
            let (cw, ct): (&[i64], i64) = match &rewrite {
                Some((w, t)) => (w, *t),
                None => (&wbuf, t),
            };

            // Recompute the sums from the canonical weights: these drive the
            // scalar evaluator's narrow flag and the binary-emission reach.
            let (mut pos_sum, mut neg_sum) = (0i128, 0i128);
            // CSD digit-magnitude sums: what the kernel's pos/neg plane
            // accumulators actually see under signed-digit emission (a
            // positive weight's negative digit lands in the NEG planes).
            let (mut pos_csd, mut neg_csd) = (0i128, 0i128);
            let mut csd_shorter = false;
            for &w in cw {
                if w >= 0 {
                    pos_sum += w as i128;
                } else {
                    neg_sum += -(w as i128);
                }
                let mag = w.unsigned_abs();
                dbuf.clear();
                canon::weight_digits(mag, &mut dbuf);
                // lint:allow(narrowing-cast): a u64 magnitude has ≤ 64 digits
                csd_shorter |= (dbuf.len() as u32) < mag.count_ones();
                for &(shift, dneg) in &dbuf {
                    if (w < 0) ^ dneg {
                        neg_csd += 1i128 << shift;
                    } else {
                        pos_csd += 1i128 << shift;
                    }
                }
            }
            per_gate_narrow.push(pos_sum <= i64::MAX as i128 && neg_sum <= i64::MAX as i128);
            let planes_bin = planes_for(pos_sum + neg_sum + (ct.unsigned_abs() as i128));
            let planes_csd = planes_for(pos_csd + neg_csd + (ct.unsigned_abs() as i128));
            // Signed-digit recoding trades fewer bit-edges for a (possibly)
            // larger digit-magnitude reach; fall back to plain binary for
            // the whole gate if that trade would push it onto the wide path.
            let use_csd = planes_csd != WIDE_GATE;
            let planes = if use_csd { planes_csd } else { planes_bin };
            per_gate_csd.push(use_csd);
            per_gate_planes.push(planes);
            per_gate_class.push(GateClass::classify(cw.iter().copied(), planes));
            if rewrite.is_some() || (use_csd && csd_shorter) {
                canon_gates += 1;
            }
            rewrites.push(rewrite);
        }

        // ── Layer schedule: ORIGINAL gate ids grouped by depth, ascending
        // inside each layer (counting sort over depths).
        let depth = depths.iter().copied().max().unwrap_or(0) as usize;
        let mut layer_sizes = vec![0u32; depth];
        for &d in &depths {
            layer_sizes[(d - 1) as usize] += 1;
        }
        let mut layer_ranges = Vec::with_capacity(depth);
        let mut start = 0u32;
        for &sz in &layer_sizes {
            layer_ranges.push((start, start + sz));
            start += sz;
        }
        let mut cursor: Vec<u32> = layer_ranges.iter().map(|&(lo, _)| lo).collect();
        let mut schedule = vec![0u32; num_gates];
        for (g, &d) in depths.iter().enumerate() {
            let c = &mut cursor[(d - 1) as usize];
            // lint:allow(narrowing-cast): gate ids fit the u32 slot space checked at entry
            schedule[*c as usize] = g as u32;
            *c += 1;
        }

        // ── Internal numbering: depth-major (so every layer is a contiguous
        // internal range — `layer_ranges` doubles as the internal ranges),
        // class-sorted inside each layer so the batch kernel's class
        // segments are maximal straight-line runs. Topological soundness
        // holds because a fan-in gate always has strictly smaller depth.
        let mut inv = schedule.clone();
        for &(lo, hi) in &layer_ranges {
            inv[lo as usize..hi as usize].sort_by_key(|&g| (per_gate_class[g as usize].index(), g));
        }
        let mut perm = vec![0u32; num_gates];
        for (internal, &orig) in inv.iter().enumerate() {
            // lint:allow(narrowing-cast): internal ids fit the u32 slot space checked at entry
            perm[orig as usize] = internal as u32;
        }

        // ── Pass 2 (internal order): build the CSR arrays. Edges are
        // reordered non-negative-weight first (the sum is order-invariant;
        // the `Unit` kernel needs the split point), and bit-edges are only
        // emitted for `Pow2`/`General` gates — `Unit` gates are evaluated
        // straight off the raw edges.
        let num_edges = circuit.num_edges();
        let mut offsets = Vec::with_capacity(num_gates + 1);
        let mut wires = Vec::with_capacity(num_edges);
        let mut weights = Vec::with_capacity(num_edges);
        let mut pos_counts = Vec::with_capacity(num_gates);
        let mut thresholds = Vec::with_capacity(num_gates);
        let mut narrow = Vec::with_capacity(num_gates);
        let mut bit_offsets = Vec::with_capacity(num_gates + 1);
        let mut bit_slots = Vec::new();
        let mut bit_shifts = Vec::new();
        let mut batch_planes = Vec::with_capacity(num_gates);
        let mut classes = Vec::with_capacity(num_gates);
        let mut class_counts = [0usize; 3];
        let mut class_plane_ops = [0u64; 3];

        offsets.push(0u32);
        bit_offsets.push(0u32);
        for &orig in &inv {
            let gate = &circuit.gates()[orig as usize];
            let class = per_gate_class[orig as usize];
            let rewrite = &rewrites[orig as usize];
            let use_csd = per_gate_csd[orig as usize];
            let threshold = match rewrite {
                Some((_, t)) => *t,
                None => gate.threshold(),
            };
            let mut emit = |sign: bool| {
                let mut count = 0u32;
                for (e, &(wire, raw)) in gate.inputs().iter().enumerate() {
                    // Canonical weight (GCD-factored signs match the raw ones,
                    // so the pos-first edge split is unchanged).
                    let weight = match rewrite {
                        Some((w, _)) => w[e],
                        None => raw,
                    };
                    if (weight < 0) != sign {
                        continue;
                    }
                    count += 1;
                    // lint:allow(narrowing-cast): slots fit the u32 space checked at entry
                    let slot = slot_of(wire, num_inputs, &perm) as u32;
                    wires.push(slot);
                    weights.push(weight);
                    if class == GateClass::Unit {
                        continue;
                    }
                    // Decompose |weight| into bit-edges for the batch kernel:
                    // signed digits (NAF) where strictly shorter, else one
                    // edge per set bit. A digit's plane sign is the weight
                    // sign flipped by the digit sign.
                    dbuf.clear();
                    if use_csd {
                        canon::weight_digits(weight.unsigned_abs(), &mut dbuf);
                    } else {
                        canon::binary_digits(weight.unsigned_abs(), &mut dbuf);
                    }
                    for &(k, dneg) in &dbuf {
                        let sign_bit = if (weight < 0) ^ dneg { 0x80u8 } else { 0 };
                        bit_slots.push(slot);
                        bit_shifts.push(k | sign_bit);
                    }
                }
                count
            };
            let pos = emit(false);
            emit(true);
            pos_counts.push(pos);
            thresholds.push(threshold);
            narrow.push(per_gate_narrow[orig as usize]);
            batch_planes.push(per_gate_planes[orig as usize]);
            classes.push(class);
            class_counts[class.index()] += 1;
            class_plane_ops[class.index()] += match class {
                // lint:allow(narrowing-cast): usize → u64 never truncates on supported targets
                GateClass::Unit => gate.fan_in() as u64,
                // lint:allow(narrowing-cast): bit-edge counts share the u32 CSR index space; the difference widens to u64
                _ => (bit_slots.len() as u32 - *bit_offsets.last().unwrap()) as u64,
            };
            // lint:allow(narrowing-cast): edge counts share the u32 CSR index space
            offsets.push(wires.len() as u32);
            // lint:allow(narrowing-cast): bit-edge counts share the u32 CSR index space
            bit_offsets.push(bit_slots.len() as u32);
        }

        // Maximal same-class runs in internal order.
        let mut segments: Vec<(GateClass, u32, u32)> = Vec::new();
        for (i, &class) in classes.iter().enumerate() {
            match segments.last_mut() {
                // lint:allow(narrowing-cast): segment ends are gate counts within the u32 slot space
                Some((c, _, hi)) if *c == class => *hi = (i + 1) as u32,
                // lint:allow(narrowing-cast): segment ends are gate counts within the u32 slot space
                _ => segments.push((class, i as u32, (i + 1) as u32)),
            }
        }

        let mut outputs = Vec::with_capacity(circuit.outputs().len());
        for &wire in circuit.outputs() {
            let valid = match wire {
                Wire::Input(i) => (i as usize) < num_inputs,
                Wire::Gate(g) => (g as usize) < num_gates,
                Wire::One => true,
            };
            if !valid {
                return Err(CircuitError::DanglingWire {
                    wire,
                    num_inputs,
                    num_gates,
                });
            }
            // lint:allow(narrowing-cast): slots fit the u32 space checked at entry
            outputs.push(slot_of(wire, num_inputs, &perm) as u32);
        }

        Ok(CompiledCircuit {
            num_inputs,
            offsets,
            wires,
            weights,
            pos_counts,
            thresholds,
            depths,
            schedule,
            layer_ranges,
            outputs,
            narrow,
            bit_offsets,
            bit_slots,
            bit_shifts,
            batch_planes,
            classes,
            segments,
            class_counts,
            class_counts_pre,
            canon_gates,
            class_plane_ops,
            perm: perm.into(),
            inv,
        })
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.thresholds.len()
    }

    /// Total number of edges (sum of all fan-ins).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.wires.len()
    }

    /// Total number of *bit-edges* — weights decomposed into set bits — held
    /// for the [`GateClass::Pow2`] and [`GateClass::General`] gates.
    /// [`GateClass::Unit`] gates are evaluated straight off the raw CSR
    /// edges and emit none; see [`CompiledCircuit::class_plane_ops`] for the
    /// full per-pass work accounting.
    #[inline]
    pub fn num_bit_edges(&self) -> usize {
        self.bit_slots.len()
    }

    /// The kernel dispatch class of gate `gate_index` (original gate id).
    #[inline]
    pub fn gate_class(&self, gate_index: usize) -> GateClass {
        self.classes[self.perm[gate_index] as usize]
    }

    /// Gates per class, as `[Unit, Pow2, General]` counts — the
    /// post-canonicalization mix the batch kernel dispatches on.
    #[inline]
    pub fn class_counts(&self) -> [usize; 3] {
        self.class_counts
    }

    /// Gates per class as the *raw* builder weights would have classified,
    /// before canonicalization (`[Unit, Pow2, General]`). Comparing against
    /// [`CompiledCircuit::class_counts`] shows how many gates the rewrite
    /// moved onto faster kernel segments.
    #[inline]
    pub fn class_counts_pre(&self) -> [usize; 3] {
        self.class_counts_pre
    }

    /// Number of gates whose compiled form was changed by canonicalization
    /// (GCD-factored weights and/or a strictly shorter signed-digit
    /// bit-edge decomposition).
    #[inline]
    pub fn canonicalized_gates(&self) -> usize {
        self.canon_gates
    }

    /// Plane-addition operations one bit-sliced batch pass performs per
    /// class (`[Unit, Pow2, General]`): raw edges for `Unit` gates,
    /// bit-edges for the rest. The unit of work of the batch kernels — cost
    /// models weight these instead of guessing from `num_bit_edges`.
    #[inline]
    pub fn class_plane_ops(&self) -> [u64; 3] {
        self.class_plane_ops
    }

    /// The ORIGINAL gate id occupying `slot`, or `None` for the constant-one
    /// wire and the primary inputs. The inverse of the internal `(depth,
    /// class)`-sorted slot numbering.
    #[inline]
    pub fn gate_of_slot(&self, slot: usize) -> Option<usize> {
        slot.checked_sub(1 + self.num_inputs)
            .map(|internal| self.inv[internal] as usize)
    }

    /// The slot holding gate `gate_index`'s value (original gate id).
    #[inline]
    pub(crate) fn slot_of_gate(&self, gate_index: usize) -> usize {
        1 + self.num_inputs + self.perm[gate_index] as usize
    }

    /// The maximum fan-in over all gates.
    pub fn max_fan_in(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Circuit depth in gate layers.
    #[inline]
    pub fn depth(&self) -> u32 {
        // lint:allow(narrowing-cast): depth ≤ gate count, which fits the u32 slot space
        self.layer_ranges.len() as u32
    }

    /// The depth of gate `gate_index` (1-based from the inputs).
    #[inline]
    pub fn gate_depth(&self, gate_index: usize) -> u32 {
        self.depths[gate_index]
    }

    /// Per-gate fan-in `(slot-encoded wires, weights)` of gate `g` (original
    /// gate id). Edges are stored non-negative-weight first; the weighted
    /// sum is order-invariant. Weights are the *canonical* (GCD-factored)
    /// ones the evaluators actually use — pair with
    /// [`CompiledCircuit::threshold`], which is factored consistently.
    #[inline]
    pub fn fan_in(&self, g: usize) -> (&[u32], &[i64]) {
        let i = self.perm[g] as usize;
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (&self.wires[lo..hi], &self.weights[lo..hi])
    }

    /// Per-gate threshold (original gate id), in canonical (GCD-factored)
    /// form — fires on exactly the same inputs as the builder gate.
    #[inline]
    pub fn threshold(&self, g: usize) -> i64 {
        self.thresholds[self.perm[g] as usize]
    }

    /// Number of designated outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Slot index of designated output `i` (slot 0 is the constant-one wire,
    /// slots `1..=num_inputs` the primary inputs, then the gates in order).
    #[inline]
    pub fn output_slot(&self, i: usize) -> usize {
        self.outputs[i] as usize
    }

    /// Gate ids of depth layer `d` (0-based layer index).
    pub fn layer(&self, d: usize) -> &[u32] {
        let (lo, hi) = self.layer_ranges[d];
        &self.schedule[lo as usize..hi as usize]
    }

    /// The largest absolute weight used anywhere in the compiled circuit
    /// (after canonicalization — never larger than the builder's).
    pub fn max_abs_weight(&self) -> u64 {
        self.weights
            .iter()
            .map(|w| w.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// Complexity statistics, computed from the CSR arrays.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::from_compiled(self)
    }

    fn check_inputs(&self, inputs: &[bool]) -> Result<()> {
        if inputs.len() != self.num_inputs {
            return Err(CircuitError::InputLengthMismatch {
                expected: self.num_inputs,
                actual: inputs.len(),
            });
        }
        Ok(())
    }

    /// Evaluates one INTERNAL gate from the flat value array (scalar
    /// fast/wide path).
    #[inline]
    fn fire_scalar(&self, g: usize, vals: &[bool]) -> bool {
        debug_assert_eq!(vals.len(), self.len_slots());
        // SAFETY: compilation guarantees every fan-in slot of gate `g` is
        // below `len_slots()`, and `vals` spans exactly that many slots.
        unsafe { self.fire_scalar_raw(g, vals.as_ptr()) }
    }

    /// Raw-pointer core of [`CompiledCircuit::fire_scalar`], shared with the
    /// parallel evaluator (whose workers must not materialize a `&[bool]`
    /// over memory that sibling threads are concurrently writing).
    ///
    /// # Safety
    ///
    /// `vals` must point to at least [`CompiledCircuit::len_slots`] initialised
    /// `bool`s, and no other thread may concurrently write any slot that gate
    /// `g` reads (its fan-in slots, which compilation bounds to earlier
    /// layers).
    #[inline]
    // SAFETY: `unsafe fn` per the contract above; every dereference below
    // restates its own in-bounds argument.
    unsafe fn fire_scalar_raw(&self, g: usize, vals: *const bool) -> bool {
        let lo = self.offsets[g] as usize;
        let hi = self.offsets[g + 1] as usize;
        if self.narrow[g] {
            let mut acc: i64 = 0;
            for e in lo..hi {
                // Branchless: mask the weight by the input bit.
                // SAFETY: `wires[e] < len_slots()` by compilation, and the
                // caller promises `vals` spans `len_slots()` slots.
                // lint:allow(narrowing-cast): a bool is exactly 0 or 1
                acc += self.weights[e] & -(unsafe { *vals.add(self.wires[e] as usize) } as i64);
            }
            acc >= self.thresholds[g]
        } else {
            let mut acc: i128 = 0;
            for e in lo..hi {
                // SAFETY: same bound as the narrow arm — `wires[e]` is below
                // `len_slots()` and `vals` covers that range.
                if unsafe { *vals.add(self.wires[e] as usize) } {
                    acc += self.weights[e] as i128;
                }
            }
            acc >= self.thresholds[g] as i128
        }
    }

    fn finish(&self, vals: Vec<bool>) -> Evaluation {
        // The slot array is in internal (depth, class) order; the exposed
        // evaluation speaks original gate ids.
        let gate_values = self
            .perm
            .iter()
            .map(|&i| vals[1 + self.num_inputs + i as usize])
            .collect();
        let outputs = self.outputs.iter().map(|&s| vals[s as usize]).collect();
        Evaluation::from_parts(gate_values, outputs)
    }

    /// Evaluates the circuit sequentially on one input assignment.
    ///
    /// Produces exactly the same [`Evaluation`] as [`Circuit::evaluate`].
    pub fn evaluate(&self, inputs: &[bool]) -> Result<Evaluation> {
        self.check_inputs(inputs)?;
        let mut vals = vec![false; 1 + self.num_inputs + self.num_gates()];
        vals[0] = true;
        vals[1..=self.num_inputs].copy_from_slice(inputs);
        for g in 0..self.num_gates() {
            vals[1 + self.num_inputs + g] = self.fire_scalar(g, &vals);
        }
        Ok(self.finish(vals))
    }

    /// Evaluates the circuit layer by layer, splitting large layers across
    /// OS threads (`std::thread::scope`). Produces exactly the same result
    /// as [`CompiledCircuit::evaluate`].
    pub fn evaluate_parallel(&self, inputs: &[bool], opts: EvalOptions) -> Result<Evaluation> {
        self.check_inputs(inputs)?;
        let mut vals = vec![false; 1 + self.num_inputs + self.num_gates()];
        vals[0] = true;
        vals[1..=self.num_inputs].copy_from_slice(inputs);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for &(lo, hi) in &self.layer_ranges {
            // Internal numbering is depth-major, so layer `d` is exactly the
            // contiguous internal gate range `lo..hi` (cache-local writes).
            let (lo, hi) = (lo as usize, hi as usize);
            let len = hi - lo;
            if threads < 2 || len < opts.parallel_threshold.max(2) {
                for g in lo..hi {
                    vals[1 + self.num_inputs + g] = self.fire_scalar(g, &vals);
                }
            } else {
                // Gates within one depth layer never reference each other, so
                // each thread reads only slots settled in earlier layers and
                // writes a slot no other thread touches. All access goes
                // through raw pointers — materializing a `&[bool]` over the
                // buffer while siblings write disjoint slots would still be
                // undefined behaviour.
                let cell = SharedVals(vals.as_mut_ptr());
                let chunk = len.div_ceil(threads);
                std::thread::scope(|scope| {
                    let mut start = lo;
                    while start < hi {
                        let end = (start + chunk).min(hi);
                        let cell = &cell;
                        scope.spawn(move || {
                            for g in start..end {
                                // SAFETY: gate `g` reads only earlier-layer
                                // slots (no concurrent writers) and writes its
                                // own slot, unique within this layer.
                                unsafe {
                                    let fired = self.fire_scalar_raw(g, cell.0);
                                    *cell.0.add(1 + self.num_inputs + g) = fired;
                                }
                            }
                        });
                        start = end;
                    }
                });
            }
        }
        Ok(self.finish(vals))
    }

    #[inline]
    pub(crate) fn len_slots(&self) -> usize {
        1 + self.num_inputs + self.num_gates()
    }

    /// Evaluates up to 64 independent input assignments in one pass of the
    /// unified width-generic kernel (`W = 1`; see `kernel.rs`).
    ///
    /// Gate values are carried as `u64` lane masks (bit `l` = assignment `l`)
    /// and each gate's weighted sums are accumulated for all lanes at once
    /// with carry-save plane arithmetic, dispatched per [`GateClass`]
    /// segment. Lane `l` of the result is bit-identical to
    /// `evaluate(&rows[l])` — values and firing counts.
    pub fn evaluate_batch64(&self, batch: &Batch64) -> Result<BatchEvaluation> {
        if batch.num_inputs != self.num_inputs {
            return Err(CircuitError::InputLengthMismatch {
                expected: self.num_inputs,
                actual: batch.num_inputs,
            });
        }
        let lanes = batch.lanes as usize;
        let lane_mask = if lanes == BATCH_LANES {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        let mut vals = vec![[0u64; 1]; self.len_slots()];
        vals[0] = [!0u64];
        for (v, &m) in vals[1..=self.num_inputs].iter_mut().zip(&batch.masks) {
            *v = [m];
        }
        let mut firing = [[0u64; 1]; FIRING_PLANES];
        self.run_planes::<1>(&mut vals, &mut firing, lanes);

        // The slot array is internal-order; expose original gate order.
        // Lanes beyond the batch width carry whatever the kernel computed
        // for them; mask them off so the exposed masks are consistent.
        let gate_masks = self
            .perm
            .iter()
            .map(|&i| vals[1 + self.num_inputs + i as usize][0] & lane_mask)
            .collect();
        let mut firing_counts = [0u32; BATCH_LANES];
        for (k, &[plane]) in firing.iter().enumerate() {
            let mut m = plane;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                firing_counts[l] += 1 << k;
                m &= m - 1;
            }
        }

        let output_masks = self
            .outputs
            .iter()
            .map(|&s| vals[s as usize][0] & lane_mask)
            .collect();
        Ok(BatchEvaluation {
            lanes: batch.lanes,
            gate_masks,
            output_masks,
            firing_counts,
        })
    }

    /// Evaluates any number of independent input assignments, riding the
    /// bit-sliced 64-lane kernel in full lane groups with a single ragged-tail
    /// path for the final partial group.
    ///
    /// Callers no longer hand-chunk batches of exactly 64: any batch size
    /// (including empty) is accepted, and the returned [`ManyEvaluation`]
    /// addresses results by request index. Request `i`'s outputs and firing
    /// count are bit-identical to `evaluate(&rows[i])`. All per-gate state
    /// lives in one [`crate::PlaneArena`] reused across lane groups — the
    /// input masks are packed straight into the arena once per group (not
    /// repacked through an intermediate [`Batch64`]), so the whole call
    /// performs a constant number of allocations regardless of batch size.
    pub fn evaluate_many<R: AsRef<[bool]>>(&self, rows: &[R]) -> Result<ManyEvaluation> {
        let num_outputs = self.outputs.len();
        let mut output_masks = Vec::with_capacity(rows.len().div_ceil(BATCH_LANES) * num_outputs);
        let mut firing_counts = Vec::with_capacity(rows.len());
        let mut arena = crate::PlaneArena::new();
        let mut refs: Vec<&[bool]> = Vec::with_capacity(BATCH_LANES);
        for chunk in rows.chunks(BATCH_LANES) {
            refs.clear();
            refs.extend(chunk.iter().map(|r| r.as_ref()));
            let ev = self.evaluate_rows_arena::<1>(&refs, &mut arena)?;
            for i in 0..num_outputs {
                output_masks.push(ev.output_lane_mask(i, 0));
            }
            firing_counts.extend_from_slice(ev.firing_counts());
        }
        Ok(ManyEvaluation {
            requests: rows.len(),
            num_outputs,
            output_masks,
            firing_counts,
        })
    }
}

/// Raw-pointer cell sharing the flat value array across a layer's threads.
struct SharedVals(*mut bool);
// SAFETY: threads write pairwise-disjoint slots of the array (each gate id
// appears exactly once in a layer schedule) and only read slots written
// before the scope began.
unsafe impl Send for SharedVals {}
// SAFETY: same disjoint-writes argument as `Send` above — concurrent `&self`
// access never races because no two threads touch the same slot.
unsafe impl Sync for SharedVals {}

/// Up to 64 input assignments packed column-wise: one `u64` lane mask per
/// primary input, bit `l` carrying assignment `l`'s value.
#[derive(Debug, Clone)]
pub struct Batch64 {
    num_inputs: usize,
    lanes: u32,
    masks: Vec<u64>,
}

impl Batch64 {
    /// Packs up to [`BATCH_LANES`] assignments (each of `num_inputs` bits).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::BatchTooWide`] for more than 64 assignments;
    /// * [`CircuitError::InputLengthMismatch`] if any row has the wrong
    ///   length (also reported for an empty batch).
    pub fn pack<R: AsRef<[bool]>>(num_inputs: usize, rows: &[R]) -> Result<Self> {
        if rows.len() > BATCH_LANES {
            return Err(CircuitError::BatchTooWide { rows: rows.len() });
        }
        if rows.is_empty() {
            return Err(CircuitError::InputLengthMismatch {
                expected: num_inputs,
                actual: 0,
            });
        }
        let mut masks = vec![0u64; num_inputs];
        for (lane, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            if row.len() != num_inputs {
                return Err(CircuitError::InputLengthMismatch {
                    expected: num_inputs,
                    actual: row.len(),
                });
            }
            for (i, &bit) in row.iter().enumerate() {
                // lint:allow(narrowing-cast): a bool is exactly 0 or 1
                masks[i] |= (bit as u64) << lane;
            }
        }
        Ok(Batch64 {
            num_inputs,
            // lint:allow(narrowing-cast): guarded above by BATCH_LANES = 64
            lanes: rows.len() as u32,
            masks,
        })
    }

    /// Number of packed assignments (1..=64).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes as usize
    }

    /// Number of primary inputs per assignment.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }
}

/// The result of a 64-lane batch evaluation: per-gate and per-output lane
/// masks plus per-lane firing counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEvaluation {
    lanes: u32,
    gate_masks: Vec<u64>,
    output_masks: Vec<u64>,
    firing_counts: [u32; BATCH_LANES],
}

impl BatchEvaluation {
    /// Number of valid lanes (the batch's assignment count).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes as usize
    }

    fn check_lane(&self, lane: usize) -> Result<()> {
        if lane >= self.lanes as usize {
            return Err(CircuitError::LaneOutOfRange {
                lane,
                lanes: self.lanes as usize,
            });
        }
        Ok(())
    }

    /// The value of output `i` for assignment `lane`.
    pub fn output(&self, lane: usize, i: usize) -> Result<bool> {
        self.check_lane(lane)?;
        let mask = self
            .output_masks
            .get(i)
            .ok_or(CircuitError::OutputIndexOutOfRange {
                index: i,
                len: self.output_masks.len(),
            })?;
        Ok((mask >> lane) & 1 == 1)
    }

    /// All designated output values for assignment `lane`.
    pub fn outputs(&self, lane: usize) -> Result<Vec<bool>> {
        self.check_lane(lane)?;
        Ok(self
            .output_masks
            .iter()
            .map(|m| (m >> lane) & 1 == 1)
            .collect())
    }

    /// Every gate's value for assignment `lane`, in gate order.
    pub fn gate_values(&self, lane: usize) -> Result<Vec<bool>> {
        self.check_lane(lane)?;
        Ok(self
            .gate_masks
            .iter()
            .map(|m| (m >> lane) & 1 == 1)
            .collect())
    }

    /// Number of gates that fired for assignment `lane` (the evaluation's
    /// *energy* in the Uchizawa–Douglas–Maass model).
    pub fn firing_count(&self, lane: usize) -> Result<u32> {
        self.check_lane(lane)?;
        Ok(self.firing_counts[lane])
    }

    /// Per-gate lane masks (bit `l` of entry `g` = gate `g`'s value for
    /// assignment `l`).  Bits of lanes beyond [`BatchEvaluation::lanes`] are
    /// always zero.
    #[inline]
    pub fn gate_masks(&self) -> &[u64] {
        &self.gate_masks
    }

    /// Per-output lane masks.  Bits of lanes beyond
    /// [`BatchEvaluation::lanes`] are always zero.
    #[inline]
    pub fn output_masks(&self) -> &[u64] {
        &self.output_masks
    }

    /// Expands one lane into a full [`Evaluation`], identical to what the
    /// scalar evaluator returns for that assignment.
    pub fn evaluation(&self, lane: usize) -> Result<Evaluation> {
        Ok(Evaluation::from_parts(
            self.gate_values(lane)?,
            self.outputs(lane)?,
        ))
    }
}

/// The result of [`CompiledCircuit::evaluate_many`]: any number of requests
/// evaluated through full 64-lane groups plus one ragged tail, addressed by
/// request index.
///
/// Holds only the designated-output lane masks and per-request firing
/// counts — the serving payload — never the per-gate state, so memory is
/// proportional to requests × outputs rather than requests × gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManyEvaluation {
    requests: usize,
    num_outputs: usize,
    /// Group-major output lane masks: group `g`'s masks occupy
    /// `output_masks[g*num_outputs..(g+1)*num_outputs]`.
    output_masks: Vec<u64>,
    firing_counts: Vec<u32>,
}

impl ManyEvaluation {
    /// Number of requests evaluated.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests
    }

    /// `true` when the batch held no requests at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests == 0
    }

    fn check_request(&self, request: usize) -> Result<()> {
        if request >= self.requests {
            return Err(CircuitError::LaneOutOfRange {
                lane: request,
                lanes: self.requests,
            });
        }
        Ok(())
    }

    #[inline]
    fn mask_bit(&self, request: usize, i: usize) -> bool {
        let mask = self.output_masks[(request / BATCH_LANES) * self.num_outputs + i];
        (mask >> (request % BATCH_LANES)) & 1 == 1
    }

    /// The value of output `i` for request `request`.
    pub fn output(&self, request: usize, i: usize) -> Result<bool> {
        self.check_request(request)?;
        if i >= self.num_outputs {
            return Err(CircuitError::OutputIndexOutOfRange {
                index: i,
                len: self.num_outputs,
            });
        }
        Ok(self.mask_bit(request, i))
    }

    /// All designated output values for request `request`.
    pub fn outputs(&self, request: usize) -> Result<Vec<bool>> {
        self.check_request(request)?;
        Ok((0..self.num_outputs)
            .map(|i| self.mask_bit(request, i))
            .collect())
    }

    /// Number of gates that fired for request `request`.
    pub fn firing_count(&self, request: usize) -> Result<u32> {
        self.check_request(request)?;
        Ok(self.firing_counts[request])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    fn mixed_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(3);
        let x = Wire::input(0);
        let y = Wire::input(1);
        let z = Wire::input(2);
        let carry = b.add_gate([(x, 1), (y, 1), (z, 1)], 2).unwrap();
        let sum = b
            .add_gate([(x, 1), (y, 1), (z, 1), (carry, -2)], 1)
            .unwrap();
        let not = b.add_gate([(sum, -3)], 0).unwrap();
        let constish = b.add_gate([(Wire::One, 5), (not, -5)], 5).unwrap();
        b.mark_output(sum);
        b.mark_output(carry);
        b.mark_output(constish);
        b.mark_output(Wire::One);
        b.mark_output(Wire::input(2));
        b.build()
    }

    #[test]
    fn compiled_matches_legacy_layout() {
        let c = mixed_circuit();
        let cc = c.compile().unwrap();
        assert_eq!(cc.num_inputs(), 3);
        assert_eq!(cc.num_gates(), 4);
        assert_eq!(cc.num_edges(), c.num_edges());
        assert_eq!(cc.depth(), c.depth());
        assert_eq!(cc.max_fan_in(), c.max_fan_in());
        assert_eq!(cc.num_outputs(), 5);
    }

    #[test]
    fn scalar_parallel_and_batch_agree_exhaustively() {
        let c = mixed_circuit();
        let cc = c.compile().unwrap();
        let rows: Vec<[bool; 3]> = (0..8u32)
            .map(|bits| [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0])
            .collect();
        let batch = Batch64::pack(3, &rows).unwrap();
        let bev = cc.evaluate_batch64(&batch).unwrap();
        for (lane, row) in rows.iter().enumerate() {
            let scalar = cc.evaluate(row).unwrap();
            let par = cc
                .evaluate_parallel(
                    row,
                    EvalOptions {
                        parallel_threshold: 1,
                    },
                )
                .unwrap();
            assert_eq!(scalar, par, "lane {lane}");
            assert_eq!(scalar, bev.evaluation(lane).unwrap(), "lane {lane}");
            assert_eq!(
                scalar.firing_count(),
                bev.firing_count(lane).unwrap() as usize,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn extreme_weights_take_the_wide_path() {
        // Coprime near-extreme weights: GCD factoring cannot shrink them,
        // so the gates genuinely exceed the plane budget.
        let mut b = CircuitBuilder::new(2);
        let g = b
            .add_gate(
                [(Wire::input(0), i64::MAX), (Wire::input(1), i64::MAX - 2)],
                1,
            )
            .unwrap();
        let h = b.add_gate([(Wire::input(0), i64::MIN), (g, 1)], 0).unwrap();
        b.mark_outputs([g, h]);
        let c = b.build();
        let cc = c.compile().unwrap();
        assert_eq!(cc.gate_class(0), GateClass::General);
        // NAF would shorten MAX's 63 bit-edges but its digit reach exceeds
        // the plane budget just like binary: the gate stays wide, unrecoded.
        assert_eq!(cc.canonicalized_gates(), 0);
        let rows = [[false, false], [false, true], [true, false], [true, true]];
        let batch = Batch64::pack(2, &rows).unwrap();
        let bev = cc.evaluate_batch64(&batch).unwrap();
        for (lane, row) in rows.iter().enumerate() {
            let scalar = cc.evaluate(row).unwrap();
            assert_eq!(scalar, bev.evaluation(lane).unwrap(), "lane {lane}");
        }
    }

    #[test]
    fn canonicalization_upgrades_classes_and_preserves_behaviour() {
        let mut b = CircuitBuilder::new(2);
        let x = Wire::input(0);
        let y = Wire::input(1);
        // {+5, -5} factors to Unit; {+6, -12} to Pow2 {+1, -2};
        // {+3, +7} is already canonical General (CSD shortens the 7).
        let maj = b.add_gate([(x, 5), (y, -5)], 3).unwrap();
        let pow = b.add_gate([(x, 6), (y, -12)], -6).unwrap();
        let gen = b.add_gate([(x, 3), (y, 7)], 7).unwrap();
        b.mark_outputs([maj, pow, gen]);
        let c = b.build();
        let cc = c.compile().unwrap();
        assert_eq!(cc.gate_class(0), GateClass::Unit);
        assert_eq!(cc.gate_class(1), GateClass::Pow2);
        assert_eq!(cc.gate_class(2), GateClass::General);
        assert_eq!(cc.class_counts_pre(), [0, 0, 3]);
        assert_eq!(cc.class_counts(), [1, 1, 1]);
        assert_eq!(cc.canonicalized_gates(), 3);
        // Factored accessors stay behaviour-equivalent.
        assert_eq!(cc.threshold(0), 1); // ⌈3/5⌉
        assert_eq!(cc.threshold(1), -1); // ⌈-6/6⌉
        assert_eq!(cc.max_abs_weight(), 7);
        // Unit gate contributes no bit-edges; Pow2 {+1,-2} one per edge
        // (2 total); General {3, 7}: 3 keeps two binary edges, 7 recodes
        // to two signed digits (8 - 1) instead of three (4 total).
        assert_eq!(cc.num_bit_edges(), 2 + 4);
        let rows = [[false, false], [false, true], [true, false], [true, true]];
        let batch = Batch64::pack(2, &rows).unwrap();
        let bev = cc.evaluate_batch64(&batch).unwrap();
        for (lane, row) in rows.iter().enumerate() {
            let direct = c.evaluate(row).unwrap();
            assert_eq!(direct, bev.evaluation(lane).unwrap(), "lane {lane}");
            assert_eq!(direct, cc.evaluate(row).unwrap(), "lane {lane}");
            assert_eq!(
                direct.firing_count(),
                bev.firing_count(lane).unwrap() as usize,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn batch_rejects_bad_shapes() {
        let c = mixed_circuit();
        let cc = c.compile().unwrap();
        let too_many: Vec<[bool; 3]> = (0..65).map(|_| [false; 3]).collect();
        assert!(matches!(
            Batch64::pack(3, &too_many),
            Err(CircuitError::BatchTooWide { rows: 65 })
        ));
        let wrong_width = Batch64::pack(2, &[[false, true]]).unwrap();
        assert!(matches!(
            cc.evaluate_batch64(&wrong_width),
            Err(CircuitError::InputLengthMismatch {
                expected: 3,
                actual: 2
            })
        ));
        let empty: &[[bool; 3]] = &[];
        assert!(Batch64::pack(3, empty).is_err());
    }

    #[test]
    fn lane_accessors_are_bounds_checked() {
        let c = mixed_circuit();
        let cc = c.compile().unwrap();
        let batch = Batch64::pack(3, &[[true, false, true]]).unwrap();
        let bev = cc.evaluate_batch64(&batch).unwrap();
        assert!(bev.output(0, 0).is_ok());
        assert!(matches!(
            bev.output(1, 0),
            Err(CircuitError::LaneOutOfRange { lane: 1, lanes: 1 })
        ));
        assert!(matches!(
            bev.output(0, 99),
            Err(CircuitError::OutputIndexOutOfRange { index: 99, .. })
        ));
    }

    #[test]
    fn dangling_wire_fails_compilation() {
        // Assemble an invalid circuit directly through serde-style surgery:
        // builder forbids this, so synthesise via Circuit::from_parts.
        let mut b = CircuitBuilder::new(1);
        let g = b.add_gate([(Wire::input(0), 1)], 1).unwrap();
        b.mark_output(g);
        let mut c = b.build();
        // Point the output at a gate that does not exist.
        c = Circuit::from_parts(
            c.num_inputs(),
            c.gates().to_vec(),
            vec![Wire::gate(7)],
            (0..c.num_gates()).map(|g| c.gate_depth(g)).collect(),
        );
        assert!(matches!(
            c.compile(),
            Err(CircuitError::DanglingWire { .. })
        ));
    }

    #[test]
    fn negative_thresholds_and_constant_one_lanes() {
        let mut b = CircuitBuilder::new(1);
        let always = b.add_gate([(Wire::input(0), 1)], i64::MIN + 1).unwrap();
        let negate = b.add_gate([(Wire::One, -4), (always, 2)], -2).unwrap();
        b.mark_outputs([always, negate]);
        let cc = b.build().compile().unwrap();
        let rows = [[false], [true]];
        let batch = Batch64::pack(1, &rows).unwrap();
        let bev = cc.evaluate_batch64(&batch).unwrap();
        for (lane, row) in rows.iter().enumerate() {
            assert_eq!(
                cc.evaluate(row).unwrap(),
                bev.evaluation(lane).unwrap(),
                "lane {lane}"
            );
        }
    }
}
