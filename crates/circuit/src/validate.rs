//! Structural validation of circuits.

use crate::{Circuit, CircuitError, Wire};

/// The result of validating a circuit's structural invariants.
///
/// Circuits produced by [`CircuitBuilder`](crate::CircuitBuilder) always validate
/// cleanly; the report is primarily useful for circuits deserialised from external
/// sources or transformed by other crates (e.g. the neuromorphic mapper).
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Every violation found, in gate order.
    pub errors: Vec<CircuitError>,
    /// Indices of gates whose output is provably constant (these are not errors, but a
    /// construction producing many of them is usually wasting gates).
    pub constant_gates: Vec<usize>,
    /// Indices of gates that are not reachable from any designated output.
    pub dead_gates: Vec<usize>,
}

impl ValidationReport {
    /// Runs all checks on `circuit`.
    ///
    /// Structural errors (dangling wires, empty fan-ins) are detected on the
    /// raw gate list — they must be reportable precisely for circuits the
    /// compiled engine rejects.  The constant-gate and dead-gate analyses run
    /// off the compiled CSR form whenever the circuit lowers cleanly.
    pub fn check(circuit: &Circuit) -> Self {
        let mut report = ValidationReport::default();
        let num_inputs = circuit.num_inputs();
        let num_gates = circuit.num_gates();

        for (idx, gate) in circuit.gates().iter().enumerate() {
            if gate.fan_in() == 0 {
                report.errors.push(CircuitError::EmptyFanIn);
            }
            for &(wire, _) in gate.inputs() {
                let ok = match wire {
                    Wire::Input(i) => (i as usize) < num_inputs,
                    Wire::Gate(g) => (g as usize) < idx,
                    Wire::One => true,
                };
                if !ok {
                    report.errors.push(CircuitError::DanglingWire {
                        wire,
                        num_inputs,
                        num_gates: idx,
                    });
                }
            }
        }

        for &out in circuit.outputs() {
            let ok = match out {
                Wire::Input(i) => (i as usize) < num_inputs,
                Wire::Gate(g) => (g as usize) < num_gates,
                Wire::One => true,
            };
            if !ok {
                report.errors.push(CircuitError::DanglingWire {
                    wire: out,
                    num_inputs,
                    num_gates,
                });
            }
        }

        match circuit.compile() {
            Ok(compiled) => {
                report.constant_gates = constant_gates_csr(&compiled);
                report.dead_gates = dead_gates_csr(&compiled);
            }
            Err(_) => {
                // Invalid circuits keep the (slower) gate-list analyses so the
                // report stays complete.
                for (idx, gate) in circuit.gates().iter().enumerate() {
                    if gate.is_constant() {
                        report.constant_gates.push(idx);
                    }
                }
                report.dead_gates = dead_gates(circuit);
            }
        }
        report
    }

    /// `true` when no structural violations were found (constant or dead gates do not
    /// make a circuit invalid).
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Gates whose output is provably constant, computed from the CSR weights:
/// a gate is constant when even the most favourable input assignment cannot
/// cross (or avoid crossing) the threshold.
fn constant_gates_csr(compiled: &crate::CompiledCircuit) -> Vec<usize> {
    (0..compiled.num_gates())
        .filter(|&g| {
            let (_, weights) = compiled.fan_in(g);
            let max_sum: i128 = weights.iter().filter(|&&w| w > 0).map(|&w| w as i128).sum();
            let min_sum: i128 = weights.iter().filter(|&&w| w < 0).map(|&w| w as i128).sum();
            let t = compiled.threshold(g) as i128;
            min_sum >= t || max_sum < t
        })
        .collect()
}

/// Gates not reachable (backwards) from any designated output, traversing the
/// compiled CSR adjacency.
///
/// Slots are internally `(depth, class)`-sorted, so every slot met during
/// the walk is translated back to its ORIGINAL gate id through
/// [`crate::CompiledCircuit::gate_of_slot`] before indexing — `fan_in` and
/// the returned report both speak original ids.
fn dead_gates_csr(compiled: &crate::CompiledCircuit) -> Vec<usize> {
    let n = compiled.num_gates();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = (0..compiled.num_outputs())
        .filter_map(|i| compiled.gate_of_slot(compiled.output_slot(i)))
        .collect();
    while let Some(g) = stack.pop() {
        if live[g] {
            continue;
        }
        live[g] = true;
        let (wires, _) = compiled.fan_in(g);
        for &slot in wires {
            if let Some(p) = compiled.gate_of_slot(slot as usize) {
                if !live[p] {
                    stack.push(p);
                }
            }
        }
    }
    (0..n).filter(|&g| !live[g]).collect()
}

/// Gates not reachable (backwards) from any designated output.
fn dead_gates(circuit: &Circuit) -> Vec<usize> {
    let n = circuit.num_gates();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = circuit
        .outputs()
        .iter()
        .filter_map(|w| w.as_gate())
        .filter(|&g| g < n)
        .collect();
    while let Some(g) = stack.pop() {
        if live[g] {
            continue;
        }
        live[g] = true;
        for &(wire, _) in circuit.gates()[g].inputs() {
            if let Some(p) = wire.as_gate() {
                if p < n && !live[p] {
                    stack.push(p);
                }
            }
        }
    }
    (0..n).filter(|&g| !live[g]).collect()
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, Wire};

    #[test]
    fn builder_output_is_valid() {
        let mut b = CircuitBuilder::new(2);
        let g = b
            .add_gate([(Wire::input(0), 1), (Wire::input(1), 1)], 1)
            .unwrap();
        b.mark_output(g);
        let report = b.build().validate();
        assert!(report.is_valid());
        assert!(report.dead_gates.is_empty());
        assert!(report.constant_gates.is_empty());
    }

    #[test]
    fn detects_dead_gates() {
        let mut b = CircuitBuilder::new(2);
        let used = b.add_gate([(Wire::input(0), 1)], 1).unwrap();
        let _unused = b.add_gate([(Wire::input(1), 1)], 1).unwrap();
        b.mark_output(used);
        let report = b.build().validate();
        assert!(report.is_valid());
        assert_eq!(report.dead_gates, vec![1]);
    }

    #[test]
    fn detects_constant_gates() {
        let mut b = CircuitBuilder::new(1);
        let g = b.add_gate([(Wire::input(0), 1)], 5).unwrap(); // never fires
        b.mark_output(g);
        let report = b.build().validate();
        assert!(report.is_valid());
        assert_eq!(report.constant_gates, vec![0]);
    }

    #[test]
    fn dead_gate_analysis_survives_class_renumbering() {
        // Gate 0 is General-class (multi-bit weight) and the designated
        // output; gate 1 is Unit-class and dead. The internal (depth, class)
        // sort orders gate 1 before gate 0, so any id-space mixup between
        // internal slots and original ids would report gate 0 dead and
        // gate 1 live.
        let mut b = CircuitBuilder::new(2);
        let live = b.add_gate([(Wire::input(0), 3)], 2).unwrap();
        let _dead = b.add_gate([(Wire::input(1), 1)], 1).unwrap();
        b.mark_output(live);
        let report = b.build().validate();
        assert!(report.is_valid());
        assert_eq!(report.dead_gates, vec![1]);

        // Same shape one layer deeper: liveness must flow through the
        // permuted fan-in slots, not raw slot arithmetic.
        let mut b = CircuitBuilder::new(2);
        let keep = b.add_gate([(Wire::input(0), 3)], 2).unwrap();
        let drop = b.add_gate([(Wire::input(1), 1)], 1).unwrap();
        let top = b.add_gate([(keep, 5), (Wire::input(1), 1)], 2).unwrap();
        let _ = drop;
        b.mark_output(top);
        let report = b.build().validate();
        assert_eq!(report.dead_gates, vec![1]);
    }

    #[test]
    fn transitive_liveness_through_intermediate_gates() {
        let mut b = CircuitBuilder::new(1);
        let g0 = b.add_gate([(Wire::input(0), 1)], 1).unwrap();
        let g1 = b.add_gate([(g0, 1)], 1).unwrap();
        let g2 = b.add_gate([(g1, 1)], 1).unwrap();
        b.mark_output(g2);
        let report = b.build().validate();
        assert!(report.dead_gates.is_empty());
    }

    #[test]
    fn output_referencing_input_is_valid() {
        let mut b = CircuitBuilder::new(1);
        b.mark_output(Wire::input(0));
        assert!(b.build().validate().is_valid());
    }
}
