//! Complexity statistics: size, depth, edges, fan-in, per-layer breakdown.
//!
//! Statistics are computed from the compiled CSR form (one pass over flat
//! arrays); [`CircuitStats::from_circuit`] compiles on the fly and falls back
//! to walking the gate list only for circuits that cannot be lowered.

use crate::compiled::CompiledCircuit;
use crate::Circuit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-layer statistics of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerStats {
    /// 1-based layer (depth) index.
    pub depth: u32,
    /// Number of gates in this layer.
    pub gates: usize,
    /// Total fan-in (edges) entering this layer.
    pub edges: usize,
    /// Maximum fan-in of a gate in this layer.
    pub max_fan_in: usize,
}

/// The complexity measures used throughout the paper.
///
/// * `size` — total number of gates;
/// * `depth` — length of the longest input→output path, counted in gates;
/// * `edges` — total number of connections between gates (sum of fan-ins);
/// * `max_fan_in` — maximum number of inputs to any gate;
/// * `max_abs_weight` — largest |weight| used anywhere (a proxy for required synaptic
///   precision on neuromorphic hardware).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of gates.
    pub size: usize,
    /// Circuit depth in gate layers.
    pub depth: u32,
    /// Total number of edges (wire connections into gates).
    pub edges: usize,
    /// Maximum gate fan-in.
    pub max_fan_in: usize,
    /// Maximum absolute weight on any connection (`u64` so `i64::MIN` is
    /// reported exactly).
    pub max_abs_weight: u64,
    /// Number of designated outputs.
    pub outputs: usize,
    /// Gates per kernel dispatch class, as `[Unit, Pow2, General]` counts
    /// (see [`crate::GateClass`]). Unit gates — all weights ±1 — dominate
    /// the paper's majority-style constructions and take the fastest batch
    /// path. Counts reflect the *post-canonicalization* classes the kernel
    /// actually dispatches on.
    pub class_counts: [usize; 3],
    /// Gates per class as the raw builder weights would have classified,
    /// before the canonicalization pass (see [`crate::canon`]). The delta
    /// against [`CircuitStats::class_counts`] is the rewrite's coverage.
    pub class_counts_pre: [usize; 3],
    /// Gates whose compiled form was changed by canonicalization
    /// (GCD-factored weights and/or shorter signed-digit bit-edges).
    pub canonicalized_gates: usize,
    /// Statistics per depth layer, from layer 1 (reads inputs) to layer `depth`.
    pub layers: Vec<LayerStats>,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    ///
    /// Compiles the circuit and reads the CSR arrays; circuits that cannot
    /// be lowered (dangling wires, slot overflow) are measured by walking the
    /// gate list directly.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        match circuit.compile() {
            Ok(compiled) => Self::from_compiled(&compiled),
            Err(_) => Self::from_gate_list(circuit),
        }
    }

    /// Computes the statistics from an already-compiled circuit.
    pub fn from_compiled(compiled: &CompiledCircuit) -> Self {
        let depth = compiled.depth();
        let mut layers: Vec<LayerStats> = (1..=depth)
            .map(|d| LayerStats {
                depth: d,
                gates: 0,
                edges: 0,
                max_fan_in: 0,
            })
            .collect();
        for (layer, d) in layers.iter_mut().zip(0..depth as usize) {
            for &g in compiled.layer(d) {
                let fan_in = compiled.fan_in(g as usize).0.len();
                layer.gates += 1;
                layer.edges += fan_in;
                layer.max_fan_in = layer.max_fan_in.max(fan_in);
            }
        }
        CircuitStats {
            inputs: compiled.num_inputs(),
            size: compiled.num_gates(),
            depth,
            edges: compiled.num_edges(),
            max_fan_in: compiled.max_fan_in(),
            max_abs_weight: compiled.max_abs_weight(),
            outputs: compiled.num_outputs(),
            class_counts: compiled.class_counts(),
            class_counts_pre: compiled.class_counts_pre(),
            canonicalized_gates: compiled.canonicalized_gates(),
            layers,
        }
    }

    /// Fallback for circuits the compiled engine rejects.
    fn from_gate_list(circuit: &Circuit) -> Self {
        let mut layers: Vec<LayerStats> = (1..=circuit.depth())
            .map(|d| LayerStats {
                depth: d,
                gates: 0,
                edges: 0,
                max_fan_in: 0,
            })
            .collect();
        let mut max_abs_weight = 0u64;
        let mut class_counts = [0usize; 3];
        for (idx, gate) in circuit.gates().iter().enumerate() {
            let d = circuit.gate_depth(idx) as usize - 1;
            let layer = &mut layers[d];
            layer.gates += 1;
            layer.edges += gate.fan_in();
            layer.max_fan_in = layer.max_fan_in.max(gate.fan_in());
            max_abs_weight = max_abs_weight.max(gate.max_abs_weight());
            // Weights-only classification (the plane budget needs the
            // compiled form; gates this fallback misclassifies as non-wide
            // only shift a count, never an evaluation).
            let weights = gate.inputs().iter().map(|&(_, w)| w);
            class_counts[crate::GateClass::classify(weights, 0).index()] += 1;
        }
        CircuitStats {
            inputs: circuit.num_inputs(),
            size: circuit.num_gates(),
            depth: circuit.depth(),
            edges: circuit.num_edges(),
            max_fan_in: circuit.max_fan_in(),
            max_abs_weight,
            outputs: circuit.outputs().len(),
            // No compiled form, so no rewrite happened: pre == post.
            class_counts,
            class_counts_pre: class_counts,
            canonicalized_gates: 0,
            layers,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "inputs={} gates={} depth={} edges={} max_fan_in={} max_|w|={} outputs={} \
             classes=unit:{}/pow2:{}/general:{} (pre-canon {}/{}/{}, {} rewritten)",
            self.inputs,
            self.size,
            self.depth,
            self.edges,
            self.max_fan_in,
            self.max_abs_weight,
            self.outputs,
            self.class_counts[0],
            self.class_counts[1],
            self.class_counts[2],
            self.class_counts_pre[0],
            self.class_counts_pre[1],
            self.class_counts_pre[2],
            self.canonicalized_gates
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "  layer {:>3}: gates={:<10} edges={:<12} max_fan_in={}",
                l.depth, l.gates, l.edges, l.max_fan_in
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, Wire};

    fn two_layer_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(4);
        let g0 = b
            .add_gate([(Wire::input(0), 2), (Wire::input(1), -3)], 1)
            .unwrap();
        let g1 = b
            .add_gate([(Wire::input(2), 1), (Wire::input(3), 1)], 2)
            .unwrap();
        let g2 = b
            .add_gate([(g0, 1), (g1, 1), (Wire::input(0), 5)], 3)
            .unwrap();
        b.mark_output(g2);
        b.build()
    }

    #[test]
    fn aggregate_statistics() {
        let s = two_layer_circuit().stats();
        assert_eq!(s.inputs, 4);
        assert_eq!(s.size, 3);
        assert_eq!(s.depth, 2);
        assert_eq!(s.edges, 2 + 2 + 3);
        assert_eq!(s.max_fan_in, 3);
        assert_eq!(s.max_abs_weight, 5);
        assert_eq!(s.outputs, 1);
    }

    #[test]
    fn per_layer_breakdown() {
        let s = two_layer_circuit().stats();
        assert_eq!(s.layers.len(), 2);
        assert_eq!(s.layers[0].gates, 2);
        assert_eq!(s.layers[0].edges, 4);
        assert_eq!(s.layers[0].max_fan_in, 2);
        assert_eq!(s.layers[1].gates, 1);
        assert_eq!(s.layers[1].edges, 3);
        assert_eq!(s.layers[1].max_fan_in, 3);
        // Layer gate counts must sum to the total size.
        assert_eq!(s.layers.iter().map(|l| l.gates).sum::<usize>(), s.size);
        assert_eq!(s.layers.iter().map(|l| l.edges).sum::<usize>(), s.edges);
    }

    #[test]
    fn display_contains_layer_lines() {
        let s = two_layer_circuit().stats();
        let text = s.to_string();
        assert!(text.contains("gates=3"));
        assert!(text.contains("layer   1"));
        assert!(text.contains("layer   2"));
    }

    #[test]
    fn empty_circuit_statistics() {
        let s = CircuitBuilder::new(3).build().stats();
        assert_eq!(s.size, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.max_fan_in, 0);
        assert!(s.layers.is_empty());
    }
}
