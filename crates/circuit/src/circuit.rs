//! The immutable, topologically-ordered threshold circuit.

use crate::compiled::CompiledCircuit;
use crate::eval::{EvalOptions, Evaluation};
use crate::stats::CircuitStats;
use crate::verify::VerifyReport;
use crate::{CircuitError, Result, ThresholdGate, Wire};
use serde::{Deserialize, Serialize};

/// A feed-forward circuit of [`ThresholdGate`]s over a fixed set of primary inputs.
///
/// Invariants (enforced by [`CircuitBuilder`](crate::CircuitBuilder) and checked by
/// [`Circuit::validate`]):
///
/// * gate `i` only references primary inputs, the constant-one wire, or gates `< i`
///   (the gate list is a topological order);
/// * every designated output wire exists.
///
/// The circuit also stores, for each gate, its *depth*: primary inputs and the
/// constant-one wire have depth 0, and a gate's depth is one more than the maximum
/// depth of its fan-in.  The circuit's depth is the maximum gate depth, which matches
/// the paper's notion of depth (number of gate layers on the longest path).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Circuit {
    pub(crate) num_inputs: usize,
    pub(crate) gates: Vec<ThresholdGate>,
    pub(crate) outputs: Vec<Wire>,
    /// `depth[i]` is the depth of gate `i` (1-based from the inputs).
    pub(crate) depths: Vec<u32>,
}

impl Circuit {
    pub(crate) fn from_parts(
        num_inputs: usize,
        gates: Vec<ThresholdGate>,
        outputs: Vec<Wire>,
        depths: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(gates.len(), depths.len());
        Circuit {
            num_inputs,
            gates,
            outputs,
            depths,
        }
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of gates (the circuit's *size* in the paper's terminology).
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gates, in topological (creation) order.
    #[inline]
    pub fn gates(&self) -> &[ThresholdGate] {
        &self.gates
    }

    /// The designated output wires, in the order they were marked.
    #[inline]
    pub fn outputs(&self) -> &[Wire] {
        &self.outputs
    }

    /// The depth of a single gate (1 = the gate reads only primary inputs / constants).
    #[inline]
    pub fn gate_depth(&self, gate_index: usize) -> u32 {
        self.depths[gate_index]
    }

    /// The depth of the circuit: the maximum gate depth (0 for a gate-free circuit).
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// Total number of edges (sum of all gate fan-ins), a measure of wiring cost.
    pub fn num_edges(&self) -> usize {
        self.gates.iter().map(|g| g.fan_in()).sum()
    }

    /// The maximum fan-in over all gates.
    pub fn max_fan_in(&self) -> usize {
        self.gates.iter().map(|g| g.fan_in()).max().unwrap_or(0)
    }

    /// Computes the full set of complexity statistics for this circuit.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::from_circuit(self)
    }

    /// Checks the structural invariants and reports any violations.
    ///
    /// For circuits that lower cleanly this includes the full compiled-IR
    /// verification of [`crate::verify`] — structural CSR invariants plus
    /// the canonicalization certificates — along with advisory constant- and
    /// dead-gate findings; invalid circuits fall back to gate-list analyses.
    pub fn validate(&self) -> VerifyReport {
        crate::verify::validate_circuit(self)
    }

    /// Lowers the circuit into its compiled CSR form (see [`CompiledCircuit`]).
    ///
    /// Compilation costs one pass over the edges; callers evaluating the same
    /// circuit more than once should compile once and keep the result.
    ///
    /// Debug builds re-verify every compiled artifact against its source
    /// (translation validation; see [`crate::verify`]) and panic on any
    /// violated invariant — a miscompilation never escapes a debug run.
    pub fn compile(&self) -> Result<CompiledCircuit> {
        let compiled = CompiledCircuit::new(self)?;
        #[cfg(debug_assertions)]
        {
            let report = crate::verify::verify_against(self, &compiled);
            debug_assert!(
                report.is_valid(),
                "compiled-IR verification failed:\n{report}"
            );
        }
        Ok(compiled)
    }

    /// Evaluates the circuit sequentially on the given input bits.
    ///
    /// `inputs[i]` is the value of [`Wire::Input(i)`](Wire).  Returns the values of
    /// every gate plus the designated outputs.
    ///
    /// This compiles on the fly; for repeated evaluation use
    /// [`Circuit::compile`] and [`CompiledCircuit::evaluate`].
    pub fn evaluate(&self, inputs: &[bool]) -> Result<Evaluation> {
        self.check_inputs(inputs)?;
        self.compile()?.evaluate(inputs)
    }

    /// Evaluates the circuit with gates inside each depth layer processed in
    /// parallel.  Produces exactly the same result as [`Circuit::evaluate`].
    ///
    /// This compiles on the fly; for repeated evaluation use
    /// [`Circuit::compile`] and [`CompiledCircuit::evaluate_parallel`].
    pub fn evaluate_parallel(&self, inputs: &[bool], opts: EvalOptions) -> Result<Evaluation> {
        self.check_inputs(inputs)?;
        self.compile()?.evaluate_parallel(inputs, opts)
    }

    /// Groups gate indices by depth: element `d` holds the indices of all gates with
    /// depth `d + 1`.  Used by the parallel evaluator and by the statistics module.
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let depth = self.depth() as usize;
        let mut layers: Vec<Vec<usize>> = vec![Vec::new(); depth];
        for (i, &d) in self.depths.iter().enumerate() {
            layers[(d - 1) as usize].push(i);
        }
        layers
    }

    fn check_inputs(&self, inputs: &[bool]) -> Result<()> {
        if inputs.len() != self.num_inputs {
            return Err(CircuitError::InputLengthMismatch {
                expected: self.num_inputs,
                actual: inputs.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    /// Builds a full adder (sum and carry of three input bits) out of threshold gates.
    fn full_adder() -> Circuit {
        let mut b = CircuitBuilder::new(3);
        let x = Wire::input(0);
        let y = Wire::input(1);
        let z = Wire::input(2);
        // carry = majority(x, y, z)
        let carry = b.add_gate([(x, 1), (y, 1), (z, 1)], 2).unwrap();
        // sum = x + y + z - 2*carry >= 1  (i.e. the low bit of x+y+z)
        let sum = b
            .add_gate([(x, 1), (y, 1), (z, 1), (carry, -2)], 1)
            .unwrap();
        b.mark_output(sum);
        b.mark_output(carry);
        b.build()
    }

    #[test]
    fn full_adder_is_correct_for_all_inputs() {
        let c = full_adder();
        for bits in 0..8u32 {
            let x = bits & 1 != 0;
            let y = bits & 2 != 0;
            let z = bits & 4 != 0;
            let expected = (x as u32) + (y as u32) + (z as u32);
            let ev = c.evaluate(&[x, y, z]).unwrap();
            let sum = ev.outputs()[0] as u32;
            let carry = ev.outputs()[1] as u32;
            assert_eq!(2 * carry + sum, expected, "inputs {bits:03b}");
        }
    }

    #[test]
    fn depth_and_size_measures() {
        let c = full_adder();
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.gate_depth(0), 1);
        assert_eq!(c.gate_depth(1), 2);
        assert_eq!(c.num_edges(), 3 + 4);
        assert_eq!(c.max_fan_in(), 4);
        assert_eq!(c.num_inputs(), 3);
    }

    #[test]
    fn layers_group_gates_by_depth() {
        let c = full_adder();
        let layers = c.layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0], vec![0]);
        assert_eq!(layers[1], vec![1]);
    }

    #[test]
    fn evaluate_rejects_wrong_input_length() {
        let c = full_adder();
        let err = c.evaluate(&[true, false]).unwrap_err();
        assert_eq!(
            err,
            CircuitError::InputLengthMismatch {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn parallel_matches_sequential_on_full_adder() {
        let c = full_adder();
        for bits in 0..8u32 {
            let input = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let seq = c.evaluate(&input).unwrap();
            let par = c.evaluate_parallel(&input, EvalOptions::default()).unwrap();
            assert_eq!(seq.outputs(), par.outputs());
            assert_eq!(seq.gate_values(), par.gate_values());
        }
    }

    #[test]
    fn empty_circuit_has_zero_depth() {
        let b = CircuitBuilder::new(4);
        let c = b.build();
        assert_eq!(c.depth(), 0);
        assert_eq!(c.num_gates(), 0);
        assert!(c.layers().is_empty());
        assert!(c.evaluate(&[false; 4]).unwrap().outputs().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let c = full_adder();
        let json = serde_json_roundtrip(&c);
        assert_eq!(json.num_gates(), c.num_gates());
        assert_eq!(json.depth(), c.depth());
        let ev_a = c.evaluate(&[true, true, false]).unwrap();
        let ev_b = json.evaluate(&[true, true, false]).unwrap();
        assert_eq!(ev_a.outputs(), ev_b.outputs());
    }

    fn serde_json_roundtrip(c: &Circuit) -> Circuit {
        // Use the bincode-free path: serde_json is not a dependency, so round-trip via
        // the serde data model using serde's test-friendly `serde::de::value` types is
        // overkill; instead just clone through serialization to a Vec with postcard-like
        // manual approach.  Simpler: rely on Clone here and check Serialize compiles.
        fn assert_serializable<T: serde::Serialize + for<'a> serde::Deserialize<'a>>(_: &T) {}
        assert_serializable(c);
        c.clone()
    }
}
