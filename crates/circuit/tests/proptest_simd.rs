//! Differential property tests for the SIMD dispatch: whatever vector level
//! the host CPU offers, every kernel width must produce bit-identical
//! results — gate masks, outputs, firing counts — to the portable scalar
//! word loop, per gate class and on ragged-tail batch widths.
//!
//! The portable arm is selected through [`tc_circuit::simd::force_portable`],
//! a process-global switch, so the tests in this binary serialise on a mutex
//! and restore the default even when an assertion fails.

use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};
use tc_circuit::{
    simd, Batch128, Batch256, Batch512, Batch64, Circuit, CircuitBuilder, PlaneArena, Wire,
};

/// Serialises every test touching the global force-portable switch.
fn simd_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Restores the default dispatch when dropped, assertion failures included.
struct PortableGuard;
impl Drop for PortableGuard {
    fn drop(&mut self) {
        simd::force_portable(false);
    }
}

/// One gate: fan-in as (wire ordinal, weight selector), plus a threshold.
type GateSpec = (Vec<(usize, i64)>, i64);

fn build_circuit(num_inputs: usize, spec: &[GateSpec], weight_of: impl Fn(i64) -> i64) -> Circuit {
    let mut b = CircuitBuilder::new(num_inputs);
    for (gate_idx, (fan_in, threshold)) in spec.iter().enumerate() {
        let mut resolved = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &(ordinal, selector) in fan_in {
            let pool = 1 + num_inputs + gate_idx;
            let o = ordinal % pool;
            let wire = if o == 0 {
                Wire::One
            } else if o <= num_inputs {
                Wire::input(o - 1)
            } else {
                Wire::gate(o - 1 - num_inputs)
            };
            if used.insert(wire) {
                resolved.push((wire, weight_of(selector)));
            }
        }
        if resolved.is_empty() {
            resolved.push((Wire::One, weight_of(1)));
        }
        let w = b.add_gate(resolved, *threshold).unwrap();
        b.mark_output(w);
    }
    b.build()
}

fn gate_spec() -> impl Strategy<Value = (usize, Vec<GateSpec>)> {
    (
        1usize..7,
        prop::collection::vec(
            (
                prop::collection::vec((0usize..96, -40i64..41), 1..7),
                -9i64..10,
            ),
            1..40,
        ),
    )
}

fn random_rows(num_inputs: usize, rows: usize, mut state: u64) -> Vec<Vec<bool>> {
    state |= 1;
    (0..rows)
        .map(|_| {
            (0..num_inputs)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Weight mapper per class forced by the proptests below.
fn weight_of(class: usize, s: i64) -> i64 {
    let sign = if s < 0 { -1 } else { 1 };
    match class {
        0 => sign,                                            // Unit
        1 => sign * (1 << (s.unsigned_abs() % 16)),           // Pow2
        2 => sign * (3 + (s.unsigned_abs() as i64 % 37) * 2), // General (odd)
        _ => match s.unsigned_abs() % 3 {
            0 => sign,
            1 => sign * (1 << (s.unsigned_abs() % 16)),
            _ => sign * (3 + (s.unsigned_abs() as i64 % 37) * 2),
        },
    }
}

/// Evaluates `rows` through every kernel width on the CURRENT dispatch arm
/// and returns a flat digest (all output masks + firing counts).
fn digest(circuit: &Circuit, rows: &[Vec<bool>]) -> (Vec<u64>, Vec<u32>) {
    let compiled = circuit.compile().unwrap();
    let mut masks = Vec::new();
    let mut firing = Vec::new();

    let b64 = Batch64::pack(compiled.num_inputs(), &rows[..rows.len().min(64)]).unwrap();
    let ev = compiled.evaluate_batch64(&b64).unwrap();
    masks.extend_from_slice(ev.gate_masks());
    masks.extend_from_slice(ev.output_masks());
    firing.extend((0..b64.lanes()).map(|l| ev.firing_count(l).unwrap()));

    let w128 = Batch128::pack(compiled.num_inputs(), &rows[..rows.len().min(128)]).unwrap();
    let ev = compiled.evaluate_batch_wide(&w128).unwrap();
    firing.extend((0..rows.len().min(128)).map(|l| ev.firing_count(l).unwrap()));

    let w256 = Batch256::pack(compiled.num_inputs(), &rows[..rows.len().min(256)]).unwrap();
    let ev = compiled.evaluate_batch_wide(&w256).unwrap();
    firing.extend((0..rows.len().min(256)).map(|l| ev.firing_count(l).unwrap()));

    let w512 = Batch512::pack(compiled.num_inputs(), rows).unwrap();
    let ev = compiled.evaluate_batch_wide(&w512).unwrap();
    firing.extend((0..rows.len()).map(|l| ev.firing_count(l).unwrap()));

    let refs: Vec<&[bool]> = rows.iter().map(|r| r.as_slice()).collect();
    let mut arena = PlaneArena::new();
    let ev = compiled
        .evaluate_rows_arena::<8>(&refs, &mut arena)
        .unwrap();
    firing.extend((0..rows.len()).map(|l| ev.firing_count(l).unwrap()));
    for i in 0..compiled.num_outputs() {
        for group in 0..rows.len().div_ceil(64) {
            masks.push(ev.output_lane_mask(i, group));
        }
    }
    (masks, firing)
}

/// Runs `digest` on the active (possibly vector) arm and on the forced
/// portable arm, and asserts bit-identical results.
fn assert_arms_agree(circuit: &Circuit, rows: &[Vec<bool>]) -> Result<(), String> {
    // A panicking sibling test must not wedge the rest of the suite.
    let _serial = match simd_lock().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    simd::force_portable(false);
    let vectored = digest(circuit, rows);
    let _guard = PortableGuard;
    simd::force_portable(true);
    let portable = digest(circuit, rows);
    prop_assert_eq!(
        vectored.0,
        portable.0,
        "lane masks diverge between {} and portable",
        simd::detected_level().name()
    );
    prop_assert_eq!(
        vectored.1,
        portable.1,
        "firing counts diverge between {} and portable",
        simd::detected_level().name()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Unit-class circuits: raw-edge popcount loops, both arms identical.
    #[test]
    fn unit_class_simd_matches_portable((num_inputs, spec) in gate_spec(),
                                        seed in any::<u64>(),
                                        width in 1usize..513) {
        let circuit = build_circuit(num_inputs, &spec, |s| weight_of(0, s));
        let rows = random_rows(num_inputs, width, seed);
        assert_arms_agree(&circuit, &rows)?;
    }

    /// Pow2-class circuits: shift-indexed plane additions.
    #[test]
    fn pow2_class_simd_matches_portable((num_inputs, spec) in gate_spec(),
                                        seed in any::<u64>(),
                                        width in 1usize..513) {
        let circuit = build_circuit(num_inputs, &spec, |s| weight_of(1, s));
        let rows = random_rows(num_inputs, width, seed);
        assert_arms_agree(&circuit, &rows)?;
    }

    /// General-class circuits: multi-digit bit-edge decompositions.
    #[test]
    fn general_class_simd_matches_portable((num_inputs, spec) in gate_spec(),
                                           seed in any::<u64>(),
                                           width in 1usize..513) {
        let circuit = build_circuit(num_inputs, &spec, |s| weight_of(2, s));
        let rows = random_rows(num_inputs, width, seed);
        assert_arms_agree(&circuit, &rows)?;
    }

    /// Mixed-class circuits on deliberately ragged batch widths (partial
    /// final lane groups for every kernel width).
    #[test]
    fn ragged_tails_simd_matches_portable((num_inputs, spec) in gate_spec(),
                                          seed in any::<u64>(),
                                          tail in 1usize..64,
                                          groups in 0usize..8) {
        let circuit = build_circuit(num_inputs, &spec, |s| weight_of(3, s));
        let rows = random_rows(num_inputs, groups * 64 + tail, seed);
        assert_arms_agree(&circuit, &rows)?;
    }
}

/// The wide (per-lane `i128`) fallback must agree across arms too.
#[test]
fn wide_gates_simd_matches_portable() {
    let mut b = CircuitBuilder::new(2);
    let g = b
        .add_gate(
            [(Wire::input(0), i64::MAX), (Wire::input(1), i64::MAX - 2)],
            1,
        )
        .unwrap();
    let h = b.add_gate([(Wire::input(0), i64::MIN), (g, 1)], 0).unwrap();
    b.mark_outputs([g, h]);
    let circuit = b.build();
    let rows = random_rows(2, 300, 0xDEADBEEF);
    assert_arms_agree(&circuit, &rows).unwrap();
}

/// On x86_64 hosts the harness actually exercises a vector arm (SSE2 is
/// baseline), so a dispatch regression cannot silently pass as portable ==
/// portable.
#[cfg(target_arch = "x86_64")]
#[test]
fn x86_64_detects_a_vector_level() {
    if std::env::var_os("TCMM_SIMD").is_some() {
        // The environment pinned a level (e.g. the portable-fallback CI
        // job); detection is deliberately overridden there.
        return;
    }
    assert_ne!(simd::detected_level(), simd::SimdLevel::Portable);
}
