//! Differential property tests for the canonicalization pass: a compiled
//! circuit — whose gates may have been GCD-factored and CSD-recoded — must
//! match an *independent* gate-list oracle gate-for-gate on outputs AND
//! observable firing counts, across every evaluator. The oracle walks the
//! raw builder gates with `i128` arithmetic and never touches the compiled
//! engine, so a canonicalization bug cannot cancel itself out.

use proptest::prelude::*;
use tc_circuit::{Batch512, Batch64, Circuit, CircuitBuilder, CompiledCircuit, PlaneArena, Wire};

/// Independent reference evaluation of the RAW gate list: returns per-gate
/// values (original ids), designated outputs, and the firing count.
fn oracle(circuit: &Circuit, row: &[bool]) -> (Vec<bool>, Vec<bool>, usize) {
    let mut vals: Vec<bool> = Vec::with_capacity(circuit.num_gates());
    for gate in circuit.gates() {
        let mut acc: i128 = 0;
        for &(wire, w) in gate.inputs() {
            let v = match wire {
                Wire::One => true,
                Wire::Input(i) => row[i as usize],
                Wire::Gate(g) => vals[g as usize],
            };
            if v {
                acc += w as i128;
            }
        }
        vals.push(acc >= gate.threshold() as i128);
    }
    let outputs = circuit
        .outputs()
        .iter()
        .map(|&wire| match wire {
            Wire::One => true,
            Wire::Input(i) => row[i as usize],
            Wire::Gate(g) => vals[g as usize],
        })
        .collect();
    let firing = vals.iter().filter(|&&v| v).count();
    (vals, outputs, firing)
}

/// Asserts every evaluator agrees with the raw-gate-list oracle on `rows`.
fn assert_matches_oracle(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    rows: &[Vec<bool>],
) -> Result<(), String> {
    let batch = Batch64::pack(compiled.num_inputs(), &rows[..rows.len().min(64)]).unwrap();
    let bev = compiled.evaluate_batch64(&batch).unwrap();
    let wide = Batch512::pack(compiled.num_inputs(), rows).unwrap();
    let wev = compiled.evaluate_batch_wide(&wide).unwrap();
    let refs: Vec<&[bool]> = rows.iter().map(|r| r.as_slice()).collect();
    let mut arena = PlaneArena::new();
    let aev = compiled
        .evaluate_rows_arena::<2>(&refs, &mut arena)
        .unwrap();
    let mev = compiled.evaluate_many(rows).unwrap();
    for (lane, row) in rows.iter().enumerate() {
        let (gates, outputs, firing) = oracle(circuit, row);
        let scalar = compiled.evaluate(row).unwrap();
        prop_assert_eq!(
            scalar.gate_values(),
            &gates[..],
            "scalar gates, lane {}",
            lane
        );
        prop_assert_eq!(
            scalar.outputs(),
            &outputs[..],
            "scalar outputs, lane {}",
            lane
        );
        prop_assert_eq!(
            scalar.firing_count(),
            firing,
            "scalar firing, lane {}",
            lane
        );
        if lane < 64 {
            prop_assert_eq!(
                &bev.evaluation(lane).unwrap(),
                &scalar,
                "batch64 lane {}",
                lane
            );
            prop_assert_eq!(
                bev.firing_count(lane).unwrap() as usize,
                firing,
                "batch64 firing, lane {}",
                lane
            );
        }
        prop_assert_eq!(
            &wev.evaluation(lane).unwrap(),
            &scalar,
            "wide512 lane {}",
            lane
        );
        prop_assert_eq!(
            &aev.evaluation(lane).unwrap(),
            &scalar,
            "arena lane {}",
            lane
        );
        prop_assert_eq!(
            aev.firing_count(lane).unwrap() as usize,
            firing,
            "arena firing, lane {}",
            lane
        );
        prop_assert_eq!(mev.outputs(lane).unwrap(), outputs, "many lane {}", lane);
        prop_assert_eq!(
            mev.firing_count(lane).unwrap() as usize,
            firing,
            "many firing, lane {}",
            lane
        );
    }
    Ok(())
}

/// One gate: fan-in as (wire ordinal, weight selector), plus a threshold.
type GateSpec = (Vec<(usize, i64)>, i64);

fn build_circuit(num_inputs: usize, spec: &[GateSpec], weight_of: impl Fn(i64) -> i64) -> Circuit {
    let mut b = CircuitBuilder::new(num_inputs);
    for (gate_idx, (fan_in, threshold)) in spec.iter().enumerate() {
        let mut resolved = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &(ordinal, selector) in fan_in {
            let pool = 1 + num_inputs + gate_idx;
            let o = ordinal % pool;
            let wire = if o == 0 {
                Wire::One
            } else if o <= num_inputs {
                Wire::input(o - 1)
            } else {
                Wire::gate(o - 1 - num_inputs)
            };
            if used.insert(wire) {
                resolved.push((wire, weight_of(selector)));
            }
        }
        if resolved.is_empty() {
            resolved.push((Wire::One, weight_of(1)));
        }
        let w = b.add_gate(resolved, *threshold).unwrap();
        b.mark_output(w);
    }
    b.build()
}

fn gate_spec() -> impl Strategy<Value = (usize, Vec<GateSpec>)> {
    (
        1usize..7,
        prop::collection::vec(
            (
                prop::collection::vec((0usize..96, -40i64..41), 1..7),
                -30i64..31,
            ),
            1..40,
        ),
    )
}

fn random_rows(num_inputs: usize, rows: usize, mut state: u64) -> Vec<Vec<bool>> {
    state |= 1;
    (0..rows)
        .map(|_| {
            (0..num_inputs)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state & 1 == 1
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Weights drawn as `sign · multiplier · scale`, so gates routinely
    /// share a magnitude factor and GCD factoring fires; thresholds span
    /// both divisible and non-divisible values (exercising the ⌈t/g⌉
    /// rounding). Every evaluator must match the raw-gate oracle.
    #[test]
    fn canonicalized_circuits_match_the_raw_oracle(
        (num_inputs, spec) in gate_spec(),
        scale in 1i64..13,
        seed in any::<u64>(),
        width in 1usize..129,
    ) {
        let circuit = build_circuit(num_inputs, &spec, |s| {
            let mult = 1 + s.unsigned_abs() as i64 % 12;
            let w = mult * scale;
            if s < 0 { -w } else { w }
        });
        let compiled = circuit.compile().unwrap();
        // With scale > 1 single-edge gates at least must factor; assert the
        // pass is actually reachable rather than silently disabled.
        if scale > 1 {
            let pre = compiled.class_counts_pre();
            let post = compiled.class_counts();
            // Canonicalization can only move gates towards cheaper classes.
            prop_assert!(post[0] >= pre[0], "Unit count must not shrink");
            prop_assert!(post[2] <= pre[2], "General count must not grow");
        }
        let rows = random_rows(num_inputs, width, seed);
        assert_matches_oracle(&circuit, &compiled, &rows)?;
    }

    /// Pure CSD stress: odd multi-bit weights (no shared factors) whose
    /// signed-digit recoding must stay output- and energy-equivalent.
    #[test]
    fn csd_recoding_matches_the_raw_oracle(
        (num_inputs, spec) in gate_spec(),
        seed in any::<u64>(),
        width in 1usize..129,
    ) {
        let circuit = build_circuit(num_inputs, &spec, |s| {
            // 3, 7, 15, 31, 63, ... : NAF-favourable runs of ones.
            let mag = (1i64 << (2 + s.unsigned_abs() % 9)) - 1;
            if s < 0 { -mag } else { mag }
        });
        let compiled = circuit.compile().unwrap();
        let rows = random_rows(num_inputs, width, seed);
        assert_matches_oracle(&circuit, &compiled, &rows)?;
    }
}

/// Deterministic extreme-weight cases: gates that must fall back to the
/// wide per-lane path (binary emission) next to factorable and
/// CSD-recodable gates in one circuit.
#[test]
fn extreme_and_mixed_gates_match_the_raw_oracle() {
    let mut b = CircuitBuilder::new(3);
    let x = Wire::input(0);
    let y = Wire::input(1);
    let z = Wire::input(2);
    let wide = b
        .add_gate([(x, i64::MAX), (y, i64::MAX - 2), (z, i64::MIN)], 3)
        .unwrap();
    let factored = b.add_gate([(x, 10), (y, -15), (wide, 20)], 7).unwrap();
    let csd = b.add_gate([(x, 127), (factored, -255)], -100).unwrap();
    let unitish = b.add_gate([(csd, 9), (wide, 9), (z, -9)], 9).unwrap();
    b.mark_outputs([wide, factored, csd, unitish]);
    let circuit = b.build();
    let compiled = circuit.compile().unwrap();
    assert_eq!(compiled.canonicalized_gates(), 3);
    let rows: Vec<Vec<bool>> = (0..8u32)
        .map(|bits| (0..3).map(|i| bits & (1 << i) != 0).collect())
        .collect();
    assert_matches_oracle(&circuit, &compiled, &rows).unwrap();
}
