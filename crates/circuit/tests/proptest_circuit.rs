//! Property-based tests for the threshold-circuit substrate.

use proptest::prelude::*;
use tc_circuit::{verify_against, verify_compiled, CircuitBuilder, DedupPolicy, EvalOptions, Wire};

/// A generated circuit description: `(num_inputs, gates)` with each gate
/// given as `(fan-in (wire ordinal, weight) pairs, threshold)`.
type CircuitSpec = (usize, Vec<(Vec<(usize, i64)>, i64)>);

/// Strategy producing a random layered circuit description together with the number of
/// primary inputs.  Gates reference only earlier wires by construction.
fn random_circuit_spec() -> impl Strategy<Value = CircuitSpec> {
    // (num_inputs, gates); each gate = (fan-in as (wire_ordinal, weight)), threshold.
    // wire_ordinal w is interpreted as: w < num_inputs => input w, else gate (w - num_inputs)
    // modulo the number of gates available so far (ensuring topological order).
    (
        2usize..6,
        prop::collection::vec(
            (
                prop::collection::vec((0usize..64, -8i64..9), 1..6),
                -6i64..7,
            ),
            1..40,
        ),
    )
}

fn build(
    num_inputs: usize,
    spec: &[(Vec<(usize, i64)>, i64)],
    dedup: DedupPolicy,
) -> tc_circuit::Circuit {
    let mut b = CircuitBuilder::with_dedup(num_inputs, dedup);
    for (gate_idx, (fan_in, threshold)) in spec.iter().enumerate() {
        let mut resolved = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &(ordinal, weight) in fan_in {
            let pool = num_inputs + gate_idx.min(b.num_gates());
            let o = ordinal % pool.max(1);
            let wire = if o < num_inputs {
                Wire::input(o)
            } else {
                Wire::gate(o - num_inputs)
            };
            if used.insert(wire) {
                resolved.push((wire, weight));
            }
        }
        if resolved.is_empty() {
            resolved.push((Wire::input(0), 1));
        }
        let w = b.add_gate(resolved, *threshold).unwrap();
        b.mark_output(w);
    }
    b.build()
}

proptest! {
    /// The parallel evaluator must agree with the sequential one on every circuit and
    /// every input.
    #[test]
    fn parallel_eval_equals_sequential((num_inputs, spec) in random_circuit_spec(),
                                       seed in any::<u64>()) {
        let circuit = build(num_inputs, &spec, DedupPolicy::KeepDuplicates);
        let mut state = seed | 1;
        let inputs: Vec<bool> = (0..num_inputs).map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        }).collect();
        let seq = circuit.evaluate(&inputs).unwrap();
        let par = circuit
            .evaluate_parallel(&inputs, EvalOptions { parallel_threshold: 1 })
            .unwrap();
        prop_assert_eq!(seq.outputs(), par.outputs());
        prop_assert_eq!(seq.gate_values(), par.gate_values());
    }

    /// Structural deduplication never changes the function computed on the designated
    /// outputs (it can only reduce the gate count).
    #[test]
    fn dedup_preserves_semantics((num_inputs, spec) in random_circuit_spec(),
                                 seed in any::<u64>()) {
        let plain = build(num_inputs, &spec, DedupPolicy::KeepDuplicates);
        let deduped = build(num_inputs, &spec, DedupPolicy::MergeStructural);
        prop_assert!(deduped.num_gates() <= plain.num_gates());
        let mut state = seed | 1;
        for _ in 0..8 {
            let inputs: Vec<bool> = (0..num_inputs).map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state & 1 == 1
            }).collect();
            // Output k of the plain circuit is gate k; in the deduped circuit output k
            // may alias an earlier gate but must carry the same value.
            let a = plain.evaluate(&inputs).unwrap();
            let d = deduped.evaluate(&inputs).unwrap();
            prop_assert_eq!(a.outputs(), d.outputs());
        }
    }

    /// Every circuit built through the builder passes validation, and its per-layer gate
    /// counts sum to its size.
    #[test]
    fn builder_circuits_validate((num_inputs, spec) in random_circuit_spec()) {
        let circuit = build(num_inputs, &spec, DedupPolicy::KeepDuplicates);
        let report = circuit.validate();
        prop_assert!(report.is_valid());
        let stats = circuit.stats();
        prop_assert_eq!(stats.layers.iter().map(|l| l.gates).sum::<usize>(), stats.size);
        prop_assert_eq!(stats.layers.iter().map(|l| l.edges).sum::<usize>(), stats.edges);
        prop_assert!(stats.depth as usize <= stats.size);
    }

    /// Gate depths are consistent: a gate's depth is strictly greater than the depth of
    /// every gate it reads.
    #[test]
    fn depths_are_monotone_along_edges((num_inputs, spec) in random_circuit_spec()) {
        let circuit = build(num_inputs, &spec, DedupPolicy::KeepDuplicates);
        for (idx, gate) in circuit.gates().iter().enumerate() {
            for (wire, _) in gate.inputs() {
                if let Some(parent) = wire.as_gate() {
                    prop_assert!(circuit.gate_depth(parent) < circuit.gate_depth(idx));
                }
            }
        }
    }

    /// Translation validation holds on every compile: random circuits lower
    /// to artifacts the independent verifier certifies — structural CSR
    /// invariants standalone, and the canonicalization certificates (GCD
    /// factor, ceiling-quotient threshold, signed-digit sums) against the
    /// source gates.
    #[test]
    fn compiled_circuits_pass_the_verifier((num_inputs, spec) in random_circuit_spec(),
                                           dedup in any::<bool>()) {
        let policy = if dedup { DedupPolicy::MergeStructural } else { DedupPolicy::KeepDuplicates };
        let circuit = build(num_inputs, &spec, policy);
        let compiled = circuit.compile().unwrap();
        let standalone = verify_compiled(&compiled);
        prop_assert!(standalone.is_valid(), "structural: {standalone}");
        let report = verify_against(&circuit, &compiled);
        prop_assert!(report.is_valid(), "against source: {report}");
        // Advisory findings never flip validity.
        prop_assert!(report.error_count() == 0);
    }
}
