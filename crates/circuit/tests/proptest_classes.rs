//! Differential property tests per gate class: circuits forced to compile
//! entirely into one [`GateClass`] (`Unit`, `Pow2`, `General`) must evaluate
//! bit-identically — gate values, outputs, and firing counts — across the
//! scalar evaluator, the unified kernel at `W = 1` (`evaluate_batch64`) and
//! `W = 4`, and the zero-allocation arena entry point. This pins each
//! class-specialised kernel loop against the reference, not just the mixed
//! circuits `proptest_compiled.rs` generates.

use proptest::prelude::*;
use tc_circuit::{Batch256, Batch64, CircuitBuilder, CompiledCircuit, GateClass, PlaneArena, Wire};

/// One gate: fan-in as (wire ordinal, weight selector), plus a threshold.
type GateSpec = (Vec<(usize, i64)>, i64);

/// Builds a layered circuit where every weight selector is mapped through
/// `weight_of`, forcing the class mix.
fn build_circuit(
    num_inputs: usize,
    spec: &[GateSpec],
    weight_of: impl Fn(i64) -> i64,
) -> tc_circuit::Circuit {
    let mut b = CircuitBuilder::new(num_inputs);
    for (gate_idx, (fan_in, threshold)) in spec.iter().enumerate() {
        let mut resolved = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &(ordinal, selector) in fan_in {
            let pool = 1 + num_inputs + gate_idx;
            let o = ordinal % pool;
            let wire = if o == 0 {
                Wire::One
            } else if o <= num_inputs {
                Wire::input(o - 1)
            } else {
                Wire::gate(o - 1 - num_inputs)
            };
            if used.insert(wire) {
                resolved.push((wire, weight_of(selector)));
            }
        }
        if resolved.is_empty() {
            resolved.push((Wire::One, weight_of(1)));
        }
        let w = b.add_gate(resolved, *threshold).unwrap();
        b.mark_output(w);
    }
    b.build()
}

fn gate_spec() -> impl Strategy<Value = (usize, Vec<GateSpec>)> {
    (
        1usize..7,
        prop::collection::vec(
            (
                prop::collection::vec((0usize..96, -40i64..41), 1..7),
                -9i64..10,
            ),
            1..40,
        ),
    )
}

fn random_rows(num_inputs: usize, rows: usize, mut state: u64) -> Vec<Vec<bool>> {
    state |= 1;
    (0..rows)
        .map(|_| {
            (0..num_inputs)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Asserts the batch64 kernel, the 256-lane kernel, and the arena path all
/// match the scalar evaluator gate-for-gate on `rows`.
fn assert_all_kernels_agree(compiled: &CompiledCircuit, rows: &[Vec<bool>]) -> Result<(), String> {
    let batch = Batch64::pack(compiled.num_inputs(), &rows[..rows.len().min(64)]).unwrap();
    let bev = compiled.evaluate_batch64(&batch).unwrap();
    let wide = Batch256::pack(compiled.num_inputs(), rows).unwrap();
    let wev = compiled.evaluate_batch_wide(&wide).unwrap();
    let refs: Vec<&[bool]> = rows.iter().map(|r| r.as_slice()).collect();
    let mut arena = PlaneArena::new();
    let aev = compiled
        .evaluate_rows_arena::<4>(&refs, &mut arena)
        .unwrap();
    for (lane, row) in rows.iter().enumerate() {
        let scalar = compiled.evaluate(row).unwrap();
        if lane < 64 {
            prop_assert_eq!(
                &scalar,
                &bev.evaluation(lane).unwrap(),
                "batch64 disagrees on lane {}",
                lane
            );
            prop_assert_eq!(
                scalar.firing_count(),
                bev.firing_count(lane).unwrap() as usize,
                "batch64 firing count disagrees on lane {}",
                lane
            );
        }
        prop_assert_eq!(
            &scalar,
            &wev.evaluation(lane).unwrap(),
            "wide256 disagrees on lane {}",
            lane
        );
        prop_assert_eq!(
            &scalar,
            &aev.evaluation(lane).unwrap(),
            "arena path disagrees on lane {}",
            lane
        );
        prop_assert_eq!(
            scalar.firing_count(),
            aev.firing_count(lane).unwrap() as usize,
            "arena firing count disagrees on lane {}",
            lane
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All weights forced to ±1: every gate must classify `Unit` and the
    /// raw-edge popcount loop must match scalar exactly.
    #[test]
    fn unit_class_matches_scalar((num_inputs, spec) in gate_spec(),
                                 seed in any::<u64>(),
                                 width in 1usize..97) {
        let circuit = build_circuit(num_inputs, &spec, |s| if s < 0 { -1 } else { 1 });
        let compiled = circuit.compile().unwrap();
        prop_assert_eq!(compiled.class_counts(), [compiled.num_gates(), 0, 0]);
        for g in 0..compiled.num_gates() {
            prop_assert_eq!(compiled.gate_class(g), GateClass::Unit);
        }
        // Unit gates emit no bit-edges at all.
        prop_assert_eq!(compiled.num_bit_edges(), 0);
        let rows = random_rows(num_inputs, width, seed);
        assert_all_kernels_agree(&compiled, &rows)?;
    }

    /// All weight magnitudes forced to single set bits (with at least the
    /// possibility of >1 magnitudes): gates classify `Unit` or `Pow2`, and
    /// the shift-indexed plane loop must match scalar exactly.
    #[test]
    fn pow2_class_matches_scalar((num_inputs, spec) in gate_spec(),
                                 seed in any::<u64>(),
                                 width in 1usize..97) {
        // Map selector s to ±2^(|s| % 20): magnitude always a power of two.
        let circuit = build_circuit(num_inputs, &spec, |s| {
            let mag = 1i64 << (s.unsigned_abs() % 20);
            if s < 0 { -mag } else { mag }
        });
        let compiled = circuit.compile().unwrap();
        prop_assert_eq!(compiled.class_counts()[2], 0, "no General gates expected");
        for g in 0..compiled.num_gates() {
            let (_, weights) = compiled.fan_in(g);
            let expected = if weights.iter().all(|&w| w.unsigned_abs() == 1) {
                GateClass::Unit
            } else {
                GateClass::Pow2
            };
            prop_assert_eq!(compiled.gate_class(g), expected, "gate {}", g);
        }
        let rows = random_rows(num_inputs, width, seed);
        assert_all_kernels_agree(&compiled, &rows)?;
    }

    /// Every gate given at least one multi-bit weight: all gates classify
    /// `General` and the bit-edge decomposition must match scalar exactly.
    #[test]
    fn general_class_matches_scalar((num_inputs, spec) in gate_spec(),
                                    seed in any::<u64>(),
                                    width in 1usize..97) {
        // Map selector s to a guaranteed multi-bit magnitude (3 + 2|s|
        // always has >= 2 set bits ruled in by construction below).
        let circuit = build_circuit(num_inputs, &spec, |s| {
            let mag = 3 + 2 * (s.unsigned_abs() as i64 % 40); // odd, >= 3
            let mag = if mag.count_ones() < 2 { mag + 2 } else { mag };
            if s < 0 { -mag } else { mag }
        });
        let compiled = circuit.compile().unwrap();
        // Every gate is General as built; canonicalization may still factor
        // a shared magnitude out (e.g. all weights ±5) and upgrade the gate,
        // so assert purity on the pre-canonicalization mix and consistency
        // on the compiled (canonical) weights.
        prop_assert_eq!(
            compiled.class_counts_pre(),
            [0, 0, compiled.num_gates()],
            "every gate must be General before canonicalization"
        );
        for g in 0..compiled.num_gates() {
            let (_, weights) = compiled.fan_in(g);
            let expected = if weights.iter().all(|&w| w.unsigned_abs() == 1) {
                GateClass::Unit
            } else if weights.iter().all(|&w| w != 0 && w.unsigned_abs().is_power_of_two()) {
                GateClass::Pow2
            } else {
                GateClass::General
            };
            prop_assert_eq!(compiled.gate_class(g), expected, "gate {}", g);
        }
        let rows = random_rows(num_inputs, width, seed);
        assert_all_kernels_agree(&compiled, &rows)?;
    }

    /// A mixed circuit with all three classes interleaved across layers:
    /// the segment dispatch and the internal (depth, class) permutation must
    /// be invisible — public accessors and evaluations speak original ids.
    #[test]
    fn mixed_classes_and_permutation_are_invisible((num_inputs, spec) in gate_spec(),
                                                   seed in any::<u64>(),
                                                   width in 1usize..97) {
        // Selector picks the class per edge: ±1, ±2^k, or multi-bit.
        let circuit = build_circuit(num_inputs, &spec, |s| {
            let sign = if s < 0 { -1 } else { 1 };
            match s.unsigned_abs() % 3 {
                0 => sign,
                1 => sign * (1 << (s.unsigned_abs() % 16)),
                _ => sign * (3 + (s.unsigned_abs() as i64 % 37) * 2),
            }
        });
        let compiled = circuit.compile().unwrap();
        // Permutation consistency: per-gate accessors agree with the source
        // circuit after canonicalization (the compiled form GCD-factors
        // shared weight magnitudes; fan-in edges are reordered
        // positives-first, so compare as weight multisets).
        for g in 0..compiled.num_gates() {
            let raw: Vec<i64> =
                circuit.gates()[g].inputs().iter().map(|&(_, w)| w).collect();
            let (mut want, want_t) =
                match tc_circuit::canonical_gate(&raw, circuit.gates()[g].threshold()) {
                    Some((w, t)) => (w, t),
                    None => (raw, circuit.gates()[g].threshold()),
                };
            prop_assert_eq!(compiled.threshold(g), want_t, "gate {} threshold", g);
            prop_assert_eq!(compiled.gate_depth(g), circuit.gate_depth(g));
            let (_, weights) = compiled.fan_in(g);
            let mut got: Vec<i64> = weights.to_vec();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "gate {} weights", g);
        }
        // Layer view speaks original ids and covers every gate once.
        let mut seen = vec![false; compiled.num_gates()];
        for d in 0..compiled.depth() as usize {
            for &g in compiled.layer(d) {
                prop_assert_eq!(compiled.gate_depth(g as usize), d as u32 + 1);
                prop_assert!(!seen[g as usize], "gate {} scheduled twice", g);
                seen[g as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let rows = random_rows(num_inputs, width, seed);
        assert_all_kernels_agree(&compiled, &rows)?;
    }
}
