//! Differential property tests for the compiled CSR engine: the scalar,
//! layer-parallel, bit-sliced `evaluate_batch64`, and width-generic
//! 128/256/512-lane evaluators must agree gate-for-gate — values, outputs,
//! and firing counts — on randomly generated layered circuits, including
//! negative weights, `Wire::One`, ragged-tail lane counts, and empty
//! batches.

use proptest::prelude::*;
use tc_circuit::{
    Batch64, BatchWide, CircuitBuilder, CompiledCircuit, EvalOptions, Wire, BATCH_LANES,
};

/// A generated circuit description: `(num_inputs, gates)` with each gate
/// given as `(fan-in (wire ordinal, weight) pairs, threshold)`.
type CircuitSpec = (usize, Vec<(Vec<(usize, i64)>, i64)>);

/// Strategy producing a random layered circuit spec: `(num_inputs, gates)`
/// where each gate is `(fan-in as (wire_ordinal, weight), threshold)`.  A
/// wire ordinal `o` resolves to: the constant-one wire when `o == 0`, input
/// `o - 1` when `o <= num_inputs`, otherwise an earlier gate (modulo the
/// gates available so far, preserving topological order).
fn circuit_spec() -> impl Strategy<Value = CircuitSpec> {
    (
        1usize..7,
        prop::collection::vec(
            (
                prop::collection::vec((0usize..96, -10i64..11), 1..7),
                -8i64..9,
            ),
            1..48,
        ),
    )
}

fn build_circuit(num_inputs: usize, spec: &[(Vec<(usize, i64)>, i64)]) -> tc_circuit::Circuit {
    let mut b = CircuitBuilder::new(num_inputs);
    for (gate_idx, (fan_in, threshold)) in spec.iter().enumerate() {
        let mut resolved = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &(ordinal, weight) in fan_in {
            let pool = 1 + num_inputs + gate_idx;
            let o = ordinal % pool;
            let wire = if o == 0 {
                Wire::One
            } else if o <= num_inputs {
                Wire::input(o - 1)
            } else {
                Wire::gate(o - 1 - num_inputs)
            };
            if used.insert(wire) {
                resolved.push((wire, weight));
            }
        }
        if resolved.is_empty() {
            resolved.push((Wire::One, 1));
        }
        let w = b.add_gate(resolved, *threshold).unwrap();
        b.mark_output(w);
    }
    // Also exercise non-gate outputs.
    b.mark_output(Wire::One);
    if num_inputs > 0 {
        b.mark_output(Wire::input(num_inputs - 1));
    }
    b.build()
}

fn random_rows(num_inputs: usize, rows: usize, mut state: u64) -> Vec<Vec<bool>> {
    state |= 1;
    (0..rows)
        .map(|_| {
            (0..num_inputs)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Asserts the width-`W` wide evaluator is bit-identical to the scalar
/// evaluator — gate values, outputs, and firing counts — on `rows`, which
/// may be empty or any ragged lane count up to `64·W`.
fn assert_wide_agrees<const W: usize>(
    compiled: &CompiledCircuit,
    rows: &[Vec<bool>],
) -> Result<(), String> {
    let batch = BatchWide::<W>::pack(compiled.num_inputs(), rows).unwrap();
    prop_assert_eq!(batch.lanes(), rows.len());
    let wev = compiled.evaluate_batch_wide(&batch).unwrap();
    prop_assert_eq!(wev.lanes(), rows.len());
    prop_assert!(
        wev.output(rows.len(), 0).is_err(),
        "dead lanes must be unreachable"
    );
    for (lane, row) in rows.iter().enumerate() {
        let scalar = compiled.evaluate(row).unwrap();
        prop_assert_eq!(
            scalar.gate_values(),
            wev.gate_values(lane).unwrap().as_slice(),
            "wide{} gate values disagree on lane {}",
            64 * W,
            lane
        );
        prop_assert_eq!(
            scalar.outputs(),
            wev.outputs(lane).unwrap().as_slice(),
            "wide{} outputs disagree on lane {}",
            64 * W,
            lane
        );
        prop_assert_eq!(
            scalar.firing_count(),
            wev.firing_count(lane).unwrap() as usize,
            "wide{} firing count disagrees on lane {}",
            64 * W,
            lane
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All three evaluators agree on gate values, outputs, and firing counts
    /// for every lane of a full-width batch.
    #[test]
    fn scalar_parallel_batch64_agree((num_inputs, spec) in circuit_spec(),
                                     seed in any::<u64>(),
                                     width in 1usize..65) {
        let circuit = build_circuit(num_inputs, &spec);
        let compiled = circuit.compile().unwrap();
        let rows = random_rows(num_inputs, width, seed);
        let batch = Batch64::pack(num_inputs, &rows).unwrap();
        prop_assert_eq!(batch.lanes(), width.min(BATCH_LANES));
        let bev = compiled.evaluate_batch64(&batch).unwrap();

        for (lane, row) in rows.iter().enumerate() {
            let scalar = compiled.evaluate(row).unwrap();
            let parallel = compiled
                .evaluate_parallel(row, EvalOptions { parallel_threshold: 1 })
                .unwrap();
            prop_assert_eq!(&scalar, &parallel, "parallel disagrees on lane {}", lane);
            prop_assert_eq!(
                scalar.gate_values(),
                bev.gate_values(lane).unwrap().as_slice(),
                "batch gate values disagree on lane {}", lane
            );
            prop_assert_eq!(
                scalar.outputs(),
                bev.outputs(lane).unwrap().as_slice(),
                "batch outputs disagree on lane {}", lane
            );
            prop_assert_eq!(
                scalar.firing_count(),
                bev.firing_count(lane).unwrap() as usize,
                "batch firing count disagrees on lane {}", lane
            );
        }
    }

    /// The wide 128/256/512-lane backends agree gate-for-gate with scalar,
    /// including ragged-tail lane counts and the empty batch (`width == 0`).
    #[test]
    fn wide_lanes_agree_with_scalar((num_inputs, spec) in circuit_spec(),
                                    seed in any::<u64>(),
                                    width in 0usize..513) {
        let circuit = build_circuit(num_inputs, &spec);
        let compiled = circuit.compile().unwrap();
        let rows = random_rows(num_inputs, width, seed);
        if width <= 128 {
            assert_wide_agrees::<2>(&compiled, &rows)?;
        }
        if width <= 256 {
            assert_wide_agrees::<4>(&compiled, &rows)?;
        }
        assert_wide_agrees::<8>(&compiled, &rows)?;
    }

    /// The padded-tail `evaluate_many` path matches per-request scalar
    /// evaluation for any batch size, including empty.
    #[test]
    fn evaluate_many_handles_any_batch_size((num_inputs, spec) in circuit_spec(),
                                            seed in any::<u64>(),
                                            requests in 0usize..200) {
        let circuit = build_circuit(num_inputs, &spec);
        let compiled = circuit.compile().unwrap();
        let rows = random_rows(num_inputs, requests, seed);
        let many = compiled.evaluate_many(&rows).unwrap();
        prop_assert_eq!(many.len(), requests);
        prop_assert_eq!(many.is_empty(), requests == 0);
        prop_assert!(many.outputs(requests).is_err(), "out-of-range request must error");
        for (i, row) in rows.iter().enumerate() {
            let scalar = compiled.evaluate(row).unwrap();
            prop_assert_eq!(
                scalar.outputs(),
                many.outputs(i).unwrap().as_slice(),
                "outputs disagree on request {}", i
            );
            prop_assert_eq!(
                scalar.firing_count(),
                many.firing_count(i).unwrap() as usize,
                "request {}", i
            );
        }
    }

    /// The compiled scalar evaluator is bit-identical to the legacy
    /// `Circuit::evaluate` entry point (which itself now lowers to CSR).
    #[test]
    fn compiled_matches_circuit_evaluate((num_inputs, spec) in circuit_spec(),
                                         seed in any::<u64>()) {
        let circuit = build_circuit(num_inputs, &spec);
        let compiled = circuit.compile().unwrap();
        for row in random_rows(num_inputs, 8, seed) {
            let a = circuit.evaluate(&row).unwrap();
            let b = compiled.evaluate(&row).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    /// Compiled statistics match the circuit-derived aggregate measures.
    #[test]
    fn compiled_stats_are_consistent((num_inputs, spec) in circuit_spec()) {
        let circuit = build_circuit(num_inputs, &spec);
        let compiled = circuit.compile().unwrap();
        let stats = compiled.stats();
        prop_assert_eq!(stats.size, circuit.num_gates());
        prop_assert_eq!(stats.depth, circuit.depth());
        prop_assert_eq!(stats.edges, circuit.num_edges());
        prop_assert_eq!(stats.max_fan_in, circuit.max_fan_in());
        prop_assert_eq!(stats.layers.iter().map(|l| l.gates).sum::<usize>(), stats.size);
        prop_assert_eq!(stats.layers.iter().map(|l| l.edges).sum::<usize>(), stats.edges);
        let layer_sum: usize = (0..compiled.depth() as usize)
            .map(|d| compiled.layer(d).len())
            .sum();
        prop_assert_eq!(layer_sum, compiled.num_gates());
    }
}

/// Zero-width rows: a circuit with no inputs (gates fed only by the
/// constant-one wire) must be servable through every batch entry point —
/// the arena packing path explicitly early-accepts empty rows instead of
/// relying on a vacuous packing loop — and a *non*-empty row against a
/// zero-input circuit must be rejected with the typed length mismatch, not
/// silently accepted.
#[test]
fn zero_input_circuits_accept_zero_width_rows_everywhere() {
    use tc_circuit::{CircuitError, PlaneArena};

    let mut b = CircuitBuilder::new(0);
    let g = b.add_gate([(Wire::one(), 1)], 1).unwrap();
    let h = b.add_gate([(Wire::one(), 1), (g, -1)], 1).unwrap();
    b.mark_output(g);
    b.mark_output(h);
    let compiled = b.build().compile().unwrap();

    let scalar = compiled.evaluate(&[]).unwrap();
    assert_eq!(scalar.outputs(), &[true, false]);

    // The arena path, at several widths and lane counts (incl. > 64).
    let mut arena = PlaneArena::new();
    for lanes in [1usize, 3, 64, 100] {
        let rows: Vec<&[bool]> = vec![&[]; lanes];
        let ev = compiled
            .evaluate_rows_arena::<2>(&rows, &mut arena)
            .unwrap();
        for lane in 0..lanes {
            assert_eq!(ev.outputs(lane).unwrap(), scalar.outputs());
            assert_eq!(
                ev.firing_count(lane).unwrap() as usize,
                scalar.firing_count()
            );
        }
    }

    // The padded-tail evaluate_many path.
    let rows: Vec<Vec<bool>> = vec![Vec::new(); 130];
    let many = compiled.evaluate_many(&rows).unwrap();
    assert_eq!(many.len(), 130);
    assert_eq!(many.outputs(129).unwrap(), scalar.outputs());

    // A non-empty row against a zero-input circuit is a typed error, not a
    // silent accept: the early-accept branch must keep the length check.
    let bad: Vec<&[bool]> = vec![&[], &[true]];
    assert!(matches!(
        compiled.evaluate_rows_arena::<1>(&bad, &mut arena),
        Err(CircuitError::InputLengthMismatch {
            expected: 0,
            actual: 1
        })
    ));
}
