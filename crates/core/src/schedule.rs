//! Level-selection schedules (Section 4.2–4.3 of the paper).
//!
//! A schedule chooses which levels `0 = h_0 < h_1 < … < h_t = log_T N` of the recursion
//! trees the circuit actually materialises.  Each selected level costs two layers of
//! depth; the geometric schedule `h_i = ⌈(1 − γ^i)ρ⌉` of Lemma 4.3 balances the gate
//! count across levels and yields the paper's main theorems, while the uniform schedule
//! `h_i = ⌈i·l/d⌉` reproduces the weaker Theorem 4.1 bound.

use crate::{CoreError, Result};
use fast_matmul::SparsityProfile;

/// A strictly increasing selection of recursion-tree levels ending at `l = log_T N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    levels: Vec<u32>,
    total_levels: u32,
}

impl LevelSchedule {
    /// Builds a schedule from an explicit list of levels.
    ///
    /// The list must be non-empty, strictly increasing, start above 0, and end exactly
    /// at `total_levels` (= `log_T N`).
    pub fn explicit(levels: Vec<u32>, total_levels: u32) -> Result<Self> {
        if levels.is_empty() {
            return Err(CoreError::InvalidSchedule {
                reason: "schedule must select at least one level",
            });
        }
        if levels[0] == 0 {
            return Err(CoreError::InvalidSchedule {
                reason: "level 0 is the input and cannot be selected",
            });
        }
        if !levels.windows(2).all(|w| w[0] < w[1]) {
            return Err(CoreError::InvalidSchedule {
                reason: "levels must be strictly increasing",
            });
        }
        if *levels.last().unwrap() != total_levels {
            return Err(CoreError::InvalidSchedule {
                reason: "the last selected level must be log_T N (the leaves)",
            });
        }
        Ok(LevelSchedule {
            levels,
            total_levels,
        })
    }

    /// The single-level schedule: compute the leaves directly from the input.
    ///
    /// This is the "most natural approach" discussed in Section 4.2, which leads to the
    /// `Õ(N^{1+ω})` gate count the paper improves upon; it is kept as an ablation
    /// baseline.
    pub fn single_level(total_levels: u32) -> Result<Self> {
        LevelSchedule::explicit(vec![total_levels], total_levels)
    }

    /// The uniform schedule `h_i = ⌈i·l/t⌉` with `t` selected levels.
    ///
    /// The paper notes (after Lemma 4.3) that this natural strategy yields a weaker
    /// bound, "comparable to Theorem 4.1"; it is the schedule used to reproduce that
    /// theorem's gate counts.
    pub fn uniform(total_levels: u32, t: u32) -> Result<Self> {
        if t == 0 {
            return Err(CoreError::InvalidSchedule {
                reason: "uniform schedule needs at least one level",
            });
        }
        let t = t.min(total_levels.max(1));
        let mut levels: Vec<u32> = (1..=t)
            .map(|i| ((i as u64 * total_levels as u64).div_ceil(t as u64)) as u32)
            .collect();
        levels.dedup();
        levels.retain(|&h| h > 0);
        LevelSchedule::explicit(levels, total_levels)
    }

    /// The geometric schedule `h_i = ⌈(1 − γ^i)·ρ⌉` of Lemma 4.3, generated until the
    /// leaf level is reached (the last level is clamped to `l`).
    pub fn geometric(total_levels: u32, rho: f64, gamma: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&gamma) || gamma <= 0.0 {
            return Err(CoreError::UnsuitableAlgorithm {
                reason: "geometric schedules need gamma strictly between 0 and 1",
            });
        }
        if rho <= 0.0 {
            return Err(CoreError::InvalidSchedule {
                reason: "rho must be positive",
            });
        }
        let mut levels = Vec::new();
        let mut gamma_pow = 1.0f64;
        // A generous iteration cap: the theorems use t = O(log log N) or t <= d, and
        // gamma^i decays geometrically, so 64 * total_levels is far beyond any need.
        for _ in 0..(64 * total_levels.max(1) as usize) {
            gamma_pow *= gamma;
            let h = ((1.0 - gamma_pow) * rho).ceil() as i64;
            let h = h.clamp(0, total_levels as i64) as u32;
            if h == 0 {
                continue;
            }
            if levels.last() != Some(&h) {
                levels.push(h);
            }
            if h >= total_levels {
                break;
            }
        }
        if levels.last() != Some(&total_levels) {
            levels.push(total_levels);
        }
        LevelSchedule::explicit(levels, total_levels)
    }

    /// The schedule of **Theorem 4.4** (`O(log log N)` depth, `Õ(N^ω)` gates):
    /// `ρ = log_T N`, giving `t = ⌊log_{1/γ}(log_T N)⌋ + 1` selected levels.
    pub fn for_theorem_4_4(profile: &SparsityProfile, total_levels: u32) -> Result<Self> {
        if !profile.is_fast() {
            return Err(CoreError::UnsuitableAlgorithm {
                reason: "Theorem 4.4 needs gamma in (0,1): use a recipe with T^2 < r < s_A",
            });
        }
        LevelSchedule::geometric(total_levels, total_levels as f64, profile.gamma())
    }

    /// The schedule of **Theorem 4.5 / 4.9** (constant depth): `ρ = log_T N + ε·log_{αβ} N`
    /// with `ε = γ^d·log_T(αβ)/(1 − γ)`, which guarantees at most `d` selected levels.
    pub fn for_theorem_4_5(profile: &SparsityProfile, total_levels: u32, d: u32) -> Result<Self> {
        if !profile.is_fast() {
            return Err(CoreError::UnsuitableAlgorithm {
                reason: "Theorem 4.5 needs gamma in (0,1): use a recipe with T^2 < r < s_A",
            });
        }
        if d == 0 {
            return Err(CoreError::InvalidSchedule {
                reason: "Theorem 4.5 needs d >= 1",
            });
        }
        let gamma = profile.gamma();
        // rho = l + eps * log_{alpha*beta}(N) simplifies to l * (1 + gamma^d / (1 - gamma)).
        let rho = total_levels as f64 * (1.0 + gamma.powi(d as i32) / (1.0 - gamma));
        let schedule = LevelSchedule::geometric(total_levels, rho, gamma)?;
        debug_assert!(
            schedule.num_selected() as u32 <= d.max(schedule.num_selected() as u32),
            "geometric schedule exceeded its level budget"
        );
        Ok(schedule)
    }

    /// The selected levels `h_1 < … < h_t`.
    #[inline]
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// `t`, the number of selected levels.
    #[inline]
    pub fn num_selected(&self) -> usize {
        self.levels.len()
    }

    /// The leaf level `l = log_T N`.
    #[inline]
    pub fn total_levels(&self) -> u32 {
        self.total_levels
    }

    /// Iterates over the transitions `(h_{i−1}, h_i)`, starting from `h_0 = 0`.
    pub fn transitions(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        std::iter::once(0u32)
            .chain(self.levels.iter().copied())
            .zip(self.levels.iter().copied())
    }

    /// Depth contributed by one tree phase: two layers per selected level.
    pub fn tree_depth(&self) -> u32 {
        2 * self.num_selected() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_matmul::BilinearAlgorithm;

    fn strassen_profile() -> SparsityProfile {
        SparsityProfile::of(&BilinearAlgorithm::strassen())
    }

    #[test]
    fn explicit_validation() {
        assert!(LevelSchedule::explicit(vec![], 4).is_err());
        assert!(LevelSchedule::explicit(vec![0, 4], 4).is_err());
        assert!(LevelSchedule::explicit(vec![2, 2, 4], 4).is_err());
        assert!(LevelSchedule::explicit(vec![2, 3], 4).is_err());
        let s = LevelSchedule::explicit(vec![2, 4], 4).unwrap();
        assert_eq!(s.num_selected(), 2);
        assert_eq!(s.tree_depth(), 4);
        let transitions: Vec<_> = s.transitions().collect();
        assert_eq!(transitions, vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn uniform_schedules() {
        let s = LevelSchedule::uniform(6, 3).unwrap();
        assert_eq!(s.levels(), &[2, 4, 6]);
        let s = LevelSchedule::uniform(5, 2).unwrap();
        assert_eq!(s.levels(), &[3, 5]);
        // More levels than the tree has collapses to one per level.
        let s = LevelSchedule::uniform(3, 10).unwrap();
        assert_eq!(s.levels(), &[1, 2, 3]);
        assert!(LevelSchedule::uniform(4, 0).is_err());
    }

    #[test]
    fn single_level_schedule() {
        let s = LevelSchedule::single_level(5).unwrap();
        assert_eq!(s.levels(), &[5]);
        assert_eq!(s.transitions().collect::<Vec<_>>(), vec![(0, 5)]);
    }

    #[test]
    fn theorem_4_4_schedule_has_loglog_levels() {
        let p = strassen_profile();
        for l in [4u32, 8, 16, 20] {
            let s = LevelSchedule::for_theorem_4_4(&p, l).unwrap();
            assert_eq!(*s.levels().last().unwrap(), l);
            // t = floor(log_{1/gamma} l) + 1 per the theorem; allow one extra level for
            // ceiling effects.
            let bound = ((l as f64).ln() / (1.0 / p.gamma()).ln()).floor() as usize + 2;
            assert!(
                s.num_selected() <= bound,
                "l={l}: t={} exceeds {bound}",
                s.num_selected()
            );
        }
    }

    #[test]
    fn theorem_4_5_schedule_respects_the_depth_budget() {
        let p = strassen_profile();
        for l in [4u32, 8, 12, 16, 24] {
            for d in 1..=6u32 {
                let s = LevelSchedule::for_theorem_4_5(&p, l, d).unwrap();
                assert_eq!(*s.levels().last().unwrap(), l);
                assert!(
                    s.num_selected() as u32 <= d,
                    "l={l} d={d}: selected {} levels",
                    s.num_selected()
                );
            }
        }
    }

    #[test]
    fn geometric_gaps_shrink_towards_the_leaves() {
        // h_i = ceil((1 - gamma^i) * rho): the increments (gamma^{i-1} - gamma^i) * rho
        // shrink geometrically, so the selected levels take one big jump from the root
        // and then cluster ever more tightly towards the leaves.  The gaps
        // h_i - h_{i-1} are therefore non-increasing (up to +1 from the ceilings).
        let p = strassen_profile();
        let s = LevelSchedule::for_theorem_4_4(&p, 20).unwrap();
        let gaps: Vec<i64> = s.transitions().map(|(a, b)| b as i64 - a as i64).collect();
        for w in gaps.windows(2) {
            assert!(
                w[0] + 1 >= w[1],
                "gaps {gaps:?} should be roughly non-increasing"
            );
        }
        // The first jump is the largest and the last is the smallest.
        assert!(gaps.first().unwrap() >= gaps.last().unwrap());
    }

    #[test]
    fn naive_recipe_is_rejected_for_geometric_schedules() {
        let p = SparsityProfile::of(&BilinearAlgorithm::naive(2));
        assert!(LevelSchedule::for_theorem_4_4(&p, 4).is_err());
        assert!(LevelSchedule::for_theorem_4_5(&p, 4, 2).is_err());
    }

    #[test]
    fn invalid_geometric_parameters() {
        assert!(LevelSchedule::geometric(4, 0.0, 0.5).is_err());
        assert!(LevelSchedule::geometric(4, 4.0, 0.0).is_err());
        assert!(LevelSchedule::geometric(4, 4.0, 1.0).is_err());
    }
}
