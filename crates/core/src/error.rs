//! Error type for the circuit generators.

use std::fmt;

/// Errors produced while generating or evaluating the paper's circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An error from the underlying circuit substrate.
    Circuit(tc_circuit::CircuitError),
    /// An error from the arithmetic constructions.
    Arith(tc_arith::ArithError),
    /// An error from the matrix / bilinear-algorithm substrate.
    Matmul(fast_matmul::MatmulError),
    /// An error from the serving runtime.
    Runtime(tc_runtime::RuntimeError),
    /// The matrix dimension is not a power of the algorithm's base dimension `T`.
    ///
    /// The circuit generators do not pad automatically (the paper assumes `N = T^l`);
    /// pad the input with [`fast_matmul::Matrix::padded`] first if needed.
    DimensionNotPowerOfBase {
        /// The requested dimension.
        n: usize,
        /// The algorithm's base dimension.
        base: usize,
    },
    /// A level schedule is invalid (empty, not strictly increasing, or not ending at
    /// `log_T N`).
    InvalidSchedule {
        /// Description of the problem.
        reason: &'static str,
    },
    /// The supplied bilinear algorithm cannot drive the construction (e.g. `γ ∉ (0,1)`
    /// for a geometric schedule).
    UnsuitableAlgorithm {
        /// Description of the problem.
        reason: &'static str,
    },
    /// A matrix supplied for evaluation does not match the circuit's input layout.
    InputMismatch {
        /// Description of the mismatch.
        reason: &'static str,
    },
    /// The trace circuit requires a symmetric matrix with zero diagonal (an adjacency
    /// matrix in the triangle-counting application).
    NotSymmetricZeroDiagonal,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Circuit(e) => write!(f, "circuit error: {e}"),
            CoreError::Arith(e) => write!(f, "arithmetic construction error: {e}"),
            CoreError::Matmul(e) => write!(f, "matrix error: {e}"),
            CoreError::Runtime(e) => write!(f, "serving runtime error: {e}"),
            CoreError::DimensionNotPowerOfBase { n, base } => {
                write!(
                    f,
                    "matrix dimension {n} is not a power of the algorithm base {base}"
                )
            }
            CoreError::InvalidSchedule { reason } => write!(f, "invalid level schedule: {reason}"),
            CoreError::UnsuitableAlgorithm { reason } => {
                write!(f, "unsuitable bilinear algorithm: {reason}")
            }
            CoreError::InputMismatch { reason } => write!(f, "input mismatch: {reason}"),
            CoreError::NotSymmetricZeroDiagonal => {
                write!(
                    f,
                    "trace circuit requires a symmetric matrix with zero diagonal"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Circuit(e) => Some(e),
            CoreError::Arith(e) => Some(e),
            CoreError::Matmul(e) => Some(e),
            CoreError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tc_circuit::CircuitError> for CoreError {
    fn from(e: tc_circuit::CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

impl From<tc_arith::ArithError> for CoreError {
    fn from(e: tc_arith::ArithError) -> Self {
        CoreError::Arith(e)
    }
}

impl From<fast_matmul::MatmulError> for CoreError {
    fn from(e: fast_matmul::MatmulError) -> Self {
        CoreError::Matmul(e)
    }
}

impl From<tc_runtime::RuntimeError> for CoreError {
    fn from(e: tc_runtime::RuntimeError) -> Self {
        // Flatten wrapped circuit errors so callers keep matching on
        // `CoreError::Circuit` regardless of which serving path raised them.
        match e {
            tc_runtime::RuntimeError::Circuit(inner) => CoreError::Circuit(inner),
            other => CoreError::Runtime(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = tc_circuit::CircuitError::EmptyFanIn.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = tc_arith::ArithError::EmptyOperands.into();
        assert!(e.to_string().contains("arithmetic"));
        let e = CoreError::DimensionNotPowerOfBase { n: 12, base: 2 };
        assert!(e.to_string().contains("12"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
