//! Analytic gate-count models.
//!
//! Two kinds of model live here:
//!
//! * **Exact counts** computed without materialising any circuit:
//!   [`tree_phase_cost`] reproduces, gate for gate, the size of a tree phase (the
//!   circuits of Lemma 4.2 / 4.3) for ±1-coefficient recipes, via a width/size dynamic
//!   program — usable for `N` up to millions; [`naive_matmul_gate_count`] and
//!   [`naive_triangle_gate_count`](crate::naive::naive_triangle_gate_count) do the same
//!   for the baselines.
//! * **Paper bounds** ([`lemma_4_3_gate_bound`], [`theorem_4_4_gate_bound`],
//!   [`theorem_4_5_gate_bound`], [`theorem_4_5_exponent`], …): the asymptotic
//!   expressions of Section 4 evaluated with their explicit constants, used to draw the
//!   scaling curves in EXPERIMENTS.md.

use crate::schedule::LevelSchedule;
use crate::tree::{coefficient_table, TreeKind};
use fast_matmul::{BilinearAlgorithm, SparsityProfile};
use std::collections::HashMap;
use tc_arith::{bits_of, repr_to_binary_gate_count, weighted_sum_gate_count};

/// Gate count and node count of one selected level of a tree phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCost {
    /// The selected level `h_i`.
    pub level: u32,
    /// Number of tree nodes materialised at this level (`r^{h_i}`).
    pub nodes: u128,
    /// Exact number of threshold gates emitted for this level.
    pub gates: u128,
}

/// The cost of one tree phase (computing all selected levels of `T_A`, `T_B`, or the
/// coefficient tree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePhaseCost {
    /// Per-level breakdown.
    pub per_level: Vec<LevelCost>,
    /// Total gates across all levels.
    pub total_gates: u128,
    /// Width profile of the leaf scalars: `(bit width per sign part, number of
    /// leaves in that class)`, ascending by width.  This is the DP's terminal
    /// state; the paper-bound models use it to cost the Lemma 3.3 product
    /// layer that consumes the leaves.
    pub leaf_widths: Vec<(u32, u128)>,
}

impl TreePhaseCost {
    /// The widest leaf class (0 for an all-masked tree) — an upper bound on the
    /// width of every leaf scalar the phase produces.
    pub fn max_leaf_width(&self) -> u32 {
        self.leaf_widths.iter().map(|&(w, _)| w).max().unwrap_or(0)
    }
}

/// Exact gate count of the tree phase of the construction, computed by dynamic
/// programming over (entry width × relative node size) classes — no circuit is built.
///
/// The count is exact for recipes whose `U`/`V`/`W` coefficients are all in `{−1,0,1}`
/// (Strassen, Winograd, their tensor powers, the naive recipe) and whose level-0 matrix
/// is dense (no masked entries); for other recipes it is an upper bound.  The builder
/// tests in `tests/` cross-check it against materialised circuits.
pub fn tree_phase_cost(
    alg: &BilinearAlgorithm,
    kind: TreeKind,
    n: usize,
    entry_bits: u32,
    schedule: &LevelSchedule,
) -> TreePhaseCost {
    let t = alg.t();
    let table = coefficient_table(alg, kind);
    // Nonzero count per product row of the driving table.
    let nnz: Vec<u128> = table
        .iter()
        .map(|row| row.iter().filter(|&&c| c != 0).count() as u128)
        .collect();

    // State: width of a node's entries -> number of nodes with that width.
    let mut widths: HashMap<u32, u128> = HashMap::new();
    widths.insert(entry_bits, 1);

    let mut per_level = Vec::new();
    let mut total: u128 = 0;
    for (h_prev, h_cur) in schedule.transitions() {
        let delta = h_cur - h_prev;
        // Multiset of relative sizes over all r^delta paths.
        let mut sizes: HashMap<u128, u128> = HashMap::new();
        sizes.insert(1, 1);
        for _ in 0..delta {
            let mut next: HashMap<u128, u128> = HashMap::new();
            for (&s, &cnt) in &sizes {
                for &a in &nnz {
                    *next.entry(s * a).or_insert(0) += cnt;
                }
            }
            sizes = next;
        }

        let cur_dim = (n / t.pow(h_cur)) as u128;
        let entries_per_node = cur_dim * cur_dim;
        let mut level_gates: u128 = 0;
        let mut next_widths: HashMap<u32, u128> = HashMap::new();
        let mut level_nodes: u128 = 0;
        for (&w, &node_cnt) in &widths {
            for (&s, &path_cnt) in &sizes {
                let nodes = node_cnt * path_cnt;
                level_nodes += nodes;
                if s == 0 || w == 0 {
                    *next_widths.entry(0).or_insert(0) += nodes;
                    continue;
                }
                let max_value = s * ((1u128 << w) - 1);
                let new_w = bits_of(max_value);
                *next_widths.entry(new_w).or_insert(0) += nodes;
                let per_entry = 2 * weighted_sum_gate_count(s, w) as u128;
                level_gates += nodes * entries_per_node * per_entry;
            }
        }
        widths = next_widths;
        total += level_gates;
        per_level.push(LevelCost {
            level: h_cur,
            nodes: level_nodes,
            gates: level_gates,
        });
    }
    let mut leaf_widths: Vec<(u32, u128)> = widths.into_iter().collect();
    leaf_widths.sort_unstable();
    TreePhaseCost {
        per_level,
        total_gates: total,
        leaf_widths,
    }
}

/// Exact gate count of [`NaiveMatmulCircuit`](crate::naive::NaiveMatmulCircuit) for
/// `n×n` matrices with `b`-bit entries, computed from the constructions' formulas.
pub fn naive_matmul_gate_count(n: u64, b: u32) -> u128 {
    // Products: for each (i, j, k) a signed two-factor product = 4 * b * b gates.
    let products = n as u128 * n as u128 * n as u128 * 4 * b as u128 * b as u128;
    // Each entry of C binarises the concatenation of n product representations.  Every
    // product contributes, for each (bit i, bit j), two terms of weight +2^(i+j) and two
    // of weight -2^(i+j).
    let mut weights = Vec::with_capacity((n as usize) * 4 * (b * b) as usize);
    for _ in 0..n {
        for i in 0..b {
            for j in 0..b {
                let w = 1i64 << (i + j);
                weights.extend_from_slice(&[w, w, -w, -w]);
            }
        }
    }
    let pos: Vec<i64> = weights.iter().copied().filter(|&w| w > 0).collect();
    let neg: Vec<i64> = weights.iter().map(|&w| -w).filter(|&w| w > 0).collect();
    let per_entry =
        repr_to_binary_gate_count(&pos) as u128 + repr_to_binary_gate_count(&neg) as u128;
    products + n as u128 * n as u128 * per_entry
}

/// The gate bound of Lemma 4.3 (up to its hidden constant):
/// `t · (αβ)^ρ · (b + log₂N) · N²`.
pub fn lemma_4_3_gate_bound(
    profile: &SparsityProfile,
    n: f64,
    entry_bits: f64,
    rho: f64,
    t: f64,
) -> f64 {
    t * (profile.alpha() * profile.beta()).powf(rho) * (entry_bits + n.log2()) * n * n
}

/// The Theorem 4.4 gate bound (up to constants): `t · N^ω · (b + log₂N)` with
/// `t = ⌊log_{1/γ} log_T N⌋ + 1`.
pub fn theorem_4_4_gate_bound(profile: &SparsityProfile, n: f64, entry_bits: f64) -> f64 {
    let l = n.ln() / (profile.t as f64).ln();
    let t = (l.ln() / (1.0 / profile.gamma()).ln()).floor() + 1.0;
    lemma_4_3_gate_bound(profile, n, entry_bits, l, t.max(1.0))
}

/// The Theorem 4.5 gate bound (up to constants): `d · N^{ω + cγ^d} · (b + log₂N)`.
pub fn theorem_4_5_gate_bound(profile: &SparsityProfile, n: f64, entry_bits: f64, d: u32) -> f64 {
    let l = n.ln() / (profile.t as f64).ln();
    let rho = l * (1.0 + profile.gamma().powi(d as i32) / (1.0 - profile.gamma()));
    lemma_4_3_gate_bound(profile, n, entry_bits, rho, d as f64)
}

/// The gate-count exponent promised by Theorem 4.5 / 4.9: `ω + c·γ^d`.
pub fn theorem_4_5_exponent(profile: &SparsityProfile, d: u32) -> f64 {
    profile.omega() + profile.c_constant() * profile.gamma().powi(d as i32)
}

/// The gate-count exponent of the Theorem 4.1 baseline: `ω + 1/d`.
pub fn theorem_4_1_exponent(profile: &SparsityProfile, d: u32) -> f64 {
    profile.omega() + 1.0 / d as f64
}

/// Least-squares slope of `log(y)` against `log(x)` — used to fit empirical gate-count
/// exponents in the experiment harness.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return f64::NAN;
    }
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let lx = x.ln();
        let ly = y.ln();
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{NaiveMatmulCircuit, NaiveTriangleCircuit};
    use crate::CircuitConfig;

    fn strassen_profile() -> SparsityProfile {
        SparsityProfile::of(&BilinearAlgorithm::strassen())
    }

    #[test]
    fn naive_matmul_count_matches_built_circuit() {
        for (n, b) in [(2usize, 2u32), (3, 2), (4, 3)] {
            let config = CircuitConfig::new(BilinearAlgorithm::strassen(), b as usize);
            let built = NaiveMatmulCircuit::new(&config, n).unwrap();
            assert_eq!(
                built.circuit().num_gates() as u128,
                naive_matmul_gate_count(n as u64, b),
                "n={n} b={b}"
            );
        }
    }

    #[test]
    fn naive_triangle_count_matches_built_circuit() {
        for n in [4usize, 6, 10] {
            let built = NaiveTriangleCircuit::new(n, 3).unwrap();
            assert_eq!(
                built.circuit().num_gates() as u64,
                crate::naive::naive_triangle_gate_count(n as u64)
            );
        }
    }

    #[test]
    fn exponents_decrease_with_d_and_beat_theorem_4_1() {
        let p = strassen_profile();
        let omega = p.omega();
        let mut last = f64::INFINITY;
        for d in 1..=8u32 {
            let e45 = theorem_4_5_exponent(&p, d);
            let e41 = theorem_4_1_exponent(&p, d);
            assert!(e45 < last, "exponent must decrease with d");
            assert!(e45 > omega, "exponent stays above omega");
            // Theorem 4.5 has an exponentially-small excess versus 4.1's 1/d excess,
            // so from small d onwards it is strictly better.
            if d >= 2 {
                assert!(e45 < e41, "d={d}: {e45} vs {e41}");
            }
            last = e45;
        }
        // Paper headline: for d > 3 the circuit has O(N^(3-eps)) gates.
        assert!(theorem_4_5_exponent(&p, 4) < 3.0);
        // And with d = 1..3 the exponent may exceed 3 (it does for Strassen with d=1).
        assert!(theorem_4_5_exponent(&p, 1) > 3.0);
    }

    #[test]
    fn bounds_grow_with_n_and_shrink_with_d() {
        let p = strassen_profile();
        let b44_small = theorem_4_4_gate_bound(&p, 256.0, 8.0);
        let b44_big = theorem_4_4_gate_bound(&p, 4096.0, 8.0);
        assert!(b44_big > b44_small);
        let b45_d2 = theorem_4_5_gate_bound(&p, 4096.0, 8.0, 2);
        let b45_d5 = theorem_4_5_gate_bound(&p, 4096.0, 8.0, 5);
        assert!(
            b45_d5 < b45_d2 * 5.0,
            "deeper circuits must not cost more (up to the d factor)"
        );
    }

    #[test]
    fn tree_phase_cost_scales_subcubically_for_theorem_4_5() {
        // For d = 4 the per-N tree-phase cost must grow with an exponent below 3
        // (the headline claim), and above omega.
        let alg = BilinearAlgorithm::strassen();
        let p = strassen_profile();
        let mut points = Vec::new();
        for l in 6..=11u32 {
            let n = 2usize.pow(l);
            let schedule = LevelSchedule::for_theorem_4_5(&p, l, 4).unwrap();
            let cost = tree_phase_cost(&alg, TreeKind::OverA, n, 8, &schedule);
            points.push((n as f64, cost.total_gates as f64));
        }
        let slope = log_log_slope(&points);
        assert!(
            slope < 3.0,
            "tree-phase exponent {slope} should be subcubic"
        );
        assert!(
            slope > p.omega() - 0.2,
            "tree-phase exponent {slope} suspiciously low"
        );
    }

    #[test]
    fn geometric_schedule_balances_levels_better_than_uniform() {
        // Lemma 4.3's point: with the geometric schedule the per-level gate counts are
        // roughly balanced, so the max/min ratio across levels is much smaller than for
        // the uniform schedule with the same number of levels.
        let alg = BilinearAlgorithm::strassen();
        let p = strassen_profile();
        let l = 12u32;
        let n = 2usize.pow(l);
        let geo = LevelSchedule::for_theorem_4_5(&p, l, 3).unwrap();
        let t = geo.num_selected() as u32;
        let uni = LevelSchedule::uniform(l, t).unwrap();
        let geo_cost = tree_phase_cost(&alg, TreeKind::OverA, n, 8, &geo);
        let uni_cost = tree_phase_cost(&alg, TreeKind::OverA, n, 8, &uni);
        let spread = |c: &TreePhaseCost| {
            let max = c.per_level.iter().map(|l| l.gates).max().unwrap() as f64;
            let min = c.per_level.iter().map(|l| l.gates).min().unwrap() as f64;
            max / min
        };
        assert!(
            spread(&geo_cost) < spread(&uni_cost),
            "geometric spread {} should be below uniform spread {}",
            spread(&geo_cost),
            spread(&uni_cost)
        );
        // And the geometric schedule uses fewer gates overall.
        assert!(geo_cost.total_gates <= uni_cost.total_gates);
    }

    #[test]
    fn log_log_slope_recovers_known_exponents() {
        let quadratic: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((log_log_slope(&quadratic) - 2.0).abs() < 1e-9);
        let cubic: Vec<(f64, f64)> = (2..12)
            .map(|i| (i as f64, (i * i * i) as f64 * 5.0))
            .collect();
        assert!((log_log_slope(&cubic) - 3.0).abs() < 1e-9);
        assert!(log_log_slope(&[(1.0, 1.0)]).is_nan());
    }
}
