//! # tcmm-core — constant-depth, subcubic-size threshold circuits for matrix
//! multiplication
//!
//! This crate implements the main constructions of *Parekh, Phillips, James, Aimone —
//! "Constant-Depth and Subcubic-Size Threshold Circuits for Matrix Multiplication"
//! (SPAA 2018)*:
//!
//! * the **naive baseline circuits** of the introduction ([`naive`]): the depth-2
//!   triangle-threshold circuit with `C(N,3) + 1` gates and the depth-3
//!   definition-based matrix-multiplication circuit;
//! * the **recursion trees** `T_A`, `T_B`, `T_AB` of Section 4 ([`tree`]) driven by any
//!   [`BilinearAlgorithm`](fast_matmul::BilinearAlgorithm);
//! * the **level-selection schedules** of Lemma 4.3 and Theorems 4.1/4.4/4.5
//!   ([`schedule::LevelSchedule`]);
//! * the **trace circuits** ([`trace`]): `trace(A³) ≥ τ` in depth `2t + 2` using
//!   `Õ(N^{ω + cγ^d})` gates (Theorem 4.5) or `O(log log N)` depth and `Õ(N^ω)` gates
//!   (Theorem 4.4);
//! * the **matrix-product circuits** ([`matmul`]): `C = AB` in depth `4t + 1`
//!   (Theorems 4.8 / 4.9), plus the uniform-schedule variant the paper equates with
//!   Theorem 4.1;
//! * **analytic gate-count models** ([`analysis`]) that predict the size of the tree
//!   phases exactly for problem sizes far too large to materialise;
//! * **certified paper bounds** ([`bounds`]): every constructor exposes a
//!   `paper_bound()` whose closed-form depth/gate/edge formulas are asserted
//!   against the compiled artifact by `tc_circuit::PaperBound::certify`.
//!
//! ## Quick start
//!
//! ```
//! use fast_matmul::{BilinearAlgorithm, Matrix};
//! use tcmm_core::{CircuitConfig, matmul::MatmulCircuit};
//!
//! // Multiply two 4x4 matrices with 3-bit entries through an actual threshold circuit
//! // derived from Strassen's algorithm with one selected level (d = 1).
//! let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 3);
//! let mm = MatmulCircuit::theorem_4_9(&config, 4, 1).unwrap();
//! let a = Matrix::from_fn(4, 4, |i, j| ((i + 2 * j) % 5) as i64 - 2);
//! let b = Matrix::from_fn(4, 4, |i, j| ((3 * i + j) % 7) as i64 - 3);
//! let c = mm.evaluate(&a, &b).unwrap();
//! assert_eq!(c, a.multiply_naive(&b).unwrap());
//! assert!(mm.circuit().depth() <= 4 * 1 + 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod bounds;
mod config;
mod error;
pub mod matmul;
mod matrix_input;
pub mod naive;
pub mod schedule;
pub mod trace;
pub mod tree;

pub use config::CircuitConfig;
pub use error::CoreError;
pub use matrix_input::MatrixInput;
pub use schedule::LevelSchedule;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
