//! Input layout for matrices fed into the circuits.

use crate::{CoreError, Result};
use fast_matmul::Matrix;
use tc_arith::{InputAllocator, SignedInt};

/// The primary-input layout of one `N×N` matrix of signed, `b`-bit entries.
///
/// Entries are allocated row-major; each entry uses the paper's `x = x⁺ − x⁻` encoding,
/// so the matrix occupies `2·b·N²` input wires.  The layout knows how to write a host
/// [`Matrix`] into an input-bit vector and how to read one back from an evaluation.
#[derive(Debug, Clone)]
pub struct MatrixInput {
    n: usize,
    bits: usize,
    entries: Vec<SignedInt>,
}

impl MatrixInput {
    /// Allocates input wires for an `n × n` matrix with `bits`-bit entries.
    pub fn allocate(alloc: &mut InputAllocator, n: usize, bits: usize) -> Self {
        MatrixInput {
            n,
            bits,
            entries: alloc.alloc_signed_vec(n * n, bits),
        }
    }

    /// Matrix dimension `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bit-width of each entry (per sign part).
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The circuit-level entry at `(i, j)`.
    #[inline]
    pub fn entry(&self, i: usize, j: usize) -> &SignedInt {
        &self.entries[i * self.n + j]
    }

    /// All entries, row-major.
    #[inline]
    pub fn entries(&self) -> &[SignedInt] {
        &self.entries
    }

    /// Writes the host matrix `m` into the input-bit vector `into`.
    ///
    /// # Errors
    /// Returns [`CoreError::InputMismatch`] if the matrix has the wrong shape or an
    /// entry does not fit in the declared bit-width.
    pub fn assign(&self, m: &Matrix, into: &mut [bool]) -> Result<()> {
        if m.rows() != self.n || m.cols() != self.n {
            return Err(CoreError::InputMismatch {
                reason: "matrix dimensions do not match the circuit's input layout",
            });
        }
        let limit = if self.bits >= 63 {
            i64::MAX
        } else {
            (1i64 << self.bits) - 1
        };
        for i in 0..self.n {
            for j in 0..self.n {
                let v = m.get(i, j);
                if v.abs() > limit {
                    return Err(CoreError::InputMismatch {
                        reason: "matrix entry does not fit in the declared bit-width",
                    });
                }
                self.entry(i, j).assign(v, into)?;
            }
        }
        Ok(())
    }

    /// Reads the matrix held by this layout back from circuit inputs and an evaluation
    /// (only meaningful when the layout's wires are primary inputs, which is always the
    /// case for layouts produced by [`MatrixInput::allocate`]).
    pub fn read_back(&self, inputs: &[bool], ev: &tc_circuit::Evaluation) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| self.entry(i, j).value(inputs, ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_circuit::CircuitBuilder;

    #[test]
    fn assign_and_read_back_roundtrip() {
        let mut alloc = InputAllocator::new();
        let layout = MatrixInput::allocate(&mut alloc, 3, 4);
        assert_eq!(alloc.num_inputs(), 2 * 4 * 9);
        let circuit = CircuitBuilder::new(alloc.num_inputs()).build();
        let m = Matrix::from_fn(3, 3, |i, j| (i as i64 - j as i64) * 3);
        let mut bits = vec![false; circuit.num_inputs()];
        layout.assign(&m, &mut bits).unwrap();
        let ev = circuit.evaluate(&bits).unwrap();
        assert_eq!(layout.read_back(&bits, &ev), m);
    }

    #[test]
    fn shape_and_range_checks() {
        let mut alloc = InputAllocator::new();
        let layout = MatrixInput::allocate(&mut alloc, 2, 3);
        let circuit = CircuitBuilder::new(alloc.num_inputs()).build();
        let mut bits = vec![false; circuit.num_inputs()];
        let wrong_shape = Matrix::zeros(3, 3);
        assert!(layout.assign(&wrong_shape, &mut bits).is_err());
        let too_big = Matrix::from_fn(2, 2, |_, _| 8);
        assert!(layout.assign(&too_big, &mut bits).is_err());
        let ok = Matrix::from_fn(2, 2, |_, _| -7);
        assert!(layout.assign(&ok, &mut bits).is_ok());
    }
}
