//! The trace circuits: "is `trace(A³) ≥ τ`?" (Theorems 4.4 and 4.5), plus the naive
//! depth-2 triangle circuit of the introduction as a baseline lives in [`crate::naive`].
//!
//! The construction follows Section 4.3.  For a symmetric `N×N` integer matrix `A` with
//! zero diagonal (e.g. a graph adjacency matrix), `trace(A³) = 2·Σ_{i<j} A_ij·C_ij`
//! with `C = A²`, and equation (4) of the paper rewrites this as
//! `Σ_k p_k·q_k` where `p_k` is the `k`-th scalar product of the fast algorithm and
//! `q_k = Σ_{i<j: k∈I_ij} w_ijk·A_ij` collects the entries of `A` that multiply `p_k`
//! in the trace.  The circuit therefore:
//!
//! 1. computes the leaves of `T_A` and `T_B` (with `B = A`) and of the coefficient tree
//!    (the `q_k`, driven by `Wᵀ` over the upper triangle of `A`), in depth `2t`;
//! 2. multiplies each triple with the depth-1 circuit of Lemma 3.3;
//! 3. feeds every product representation, scaled by 2, into a single output gate with
//!    threshold `τ`.
//!
//! Total depth: `2t + 2` (the paper states `2d + 2` in the abstract and the slightly
//! looser `2d + 5` in Theorem 4.5).

use crate::matrix_input::MatrixInput;
use crate::schedule::LevelSchedule;
use crate::tree::{coefficient_table, compute_tree_leaves, zero_signed, TreeKind};
use crate::{CircuitConfig, CoreError, Result};
use fast_matmul::Matrix;
use tc_arith::{product3_signed_repr, threshold_of_repr, InputAllocator, Repr, SignedInt};
use tc_circuit::{Circuit, CircuitBuilder, CircuitStats, CompiledCircuit, PaperBound};
use tc_runtime::Runtime;

/// A constant-depth threshold circuit deciding `trace(A³) ≥ τ` for symmetric
/// zero-diagonal integer matrices `A`.
///
/// The circuit is lowered to its compiled CSR form once at construction;
/// every evaluation entry point (scalar, parallel, batched) runs off that
/// form, so issuing many queries never rebuilds per-gate state. Batched
/// queries route through an embedded [`Runtime`] (auto-tuned backend choice,
/// worker-sharded lane groups); [`TraceCircuit::evaluate_many_with`] accepts
/// a shared runtime instead, so one runtime can serve many circuits.
#[derive(Debug)]
pub struct TraceCircuit {
    circuit: Circuit,
    compiled: CompiledCircuit,
    input: MatrixInput,
    tau: i64,
    schedule: LevelSchedule,
    bound: PaperBound,
    runtime: Runtime,
}

impl TraceCircuit {
    /// Builds the trace circuit for a given schedule.
    ///
    /// `n` must be a power of the recipe's base dimension `T`, and the schedule's leaf
    /// level must equal `log_T n`.
    pub fn with_schedule(
        config: &CircuitConfig,
        n: usize,
        tau: i64,
        schedule: LevelSchedule,
    ) -> Result<Self> {
        let alg = config.algorithm();
        let t = alg.t();
        let levels = levels_for(n, t)?;
        if schedule.total_levels() != levels {
            return Err(CoreError::InvalidSchedule {
                reason: "schedule leaf level must equal log_T n",
            });
        }

        let mut alloc = InputAllocator::new();
        let input = MatrixInput::allocate(&mut alloc, n, config.entry_bits());
        let mut builder = CircuitBuilder::new(alloc.num_inputs());

        // The three level-0 matrices: A, B = A, and the upper triangle of A (for the
        // coefficient tree of equation (4)).
        let full: Vec<SignedInt> = input.entries().to_vec();
        let mut masked: Vec<SignedInt> = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                masked.push(if i < j {
                    input.entry(i, j).clone()
                } else {
                    zero_signed()
                });
            }
        }

        let u_table = coefficient_table(alg, TreeKind::OverA);
        let v_table = coefficient_table(alg, TreeKind::OverB);
        let q_table = coefficient_table(alg, TreeKind::OverCTransposed);

        let leaves_a = compute_tree_leaves(&mut builder, &full, n, &u_table, t, &schedule)?;
        let leaves_b = compute_tree_leaves(&mut builder, &full, n, &v_table, t, &schedule)?;
        let leaves_q = compute_tree_leaves(&mut builder, &masked, n, &q_table, t, &schedule)?;

        // Triple products (Lemma 3.3), scaled by 2 so the threshold can stay at τ
        // (trace(A³) = 2·Σ p_k q_k).
        let mut total = Repr::zero();
        for ((a, b), q) in leaves_a.iter().zip(&leaves_b).zip(&leaves_q) {
            if a.width() == 0 || b.width() == 0 || q.width() == 0 {
                continue;
            }
            let prod = product3_signed_repr(&mut builder, a, b, q)?;
            total.add(&prod.scale(2)?);
        }
        let out = threshold_of_repr(&mut builder, &total, tau)?;
        builder.mark_output(out);

        let circuit = builder.build();
        let compiled = circuit.compile()?;
        let bound = crate::bounds::trace_paper_bound(config, n, &schedule);
        Ok(TraceCircuit {
            circuit,
            compiled,
            input,
            tau,
            schedule,
            bound,
            runtime: Runtime::new(),
        })
    }

    /// The circuit of **Theorem 4.5**: constant depth `2t + 2` with `t ≤ d`, using
    /// `Õ(d·N^{ω + c·γ^d})` gates.
    pub fn theorem_4_5(config: &CircuitConfig, n: usize, d: u32, tau: i64) -> Result<Self> {
        let levels = levels_for(n, config.algorithm().t())?;
        let schedule = LevelSchedule::for_theorem_4_5(&config.sparsity(), levels, d)?;
        TraceCircuit::with_schedule(config, n, tau, schedule)
    }

    /// The circuit of **Theorem 4.4**: depth `O(log log N)` with `Õ(N^ω)` gates.
    pub fn theorem_4_4(config: &CircuitConfig, n: usize, tau: i64) -> Result<Self> {
        let levels = levels_for(n, config.algorithm().t())?;
        let schedule = LevelSchedule::for_theorem_4_4(&config.sparsity(), levels)?;
        TraceCircuit::with_schedule(config, n, tau, schedule)
    }

    /// The underlying threshold circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The compiled CSR form shared by every evaluation entry point.
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    /// The input layout for the matrix `A`.
    pub fn input(&self) -> &MatrixInput {
        &self.input
    }

    /// The threshold `τ` baked into the output gate.
    pub fn tau(&self) -> i64 {
        self.tau
    }

    /// The level schedule used by the construction.
    pub fn schedule(&self) -> &LevelSchedule {
        &self.schedule
    }

    /// The closed-form paper bound this instance must satisfy
    /// (see [`crate::bounds::trace_paper_bound`]).
    pub fn paper_bound(&self) -> &PaperBound {
        &self.bound
    }

    /// Complexity statistics, read from the stored compiled form.
    pub fn stats(&self) -> CircuitStats {
        self.compiled.stats()
    }

    /// Encodes `a`, evaluates the circuit, and returns whether it asserts
    /// `trace(a³) ≥ τ`.
    ///
    /// # Errors
    /// Returns [`CoreError::NotSymmetricZeroDiagonal`] unless `a` is symmetric with a
    /// zero diagonal (the precondition of equation (4)).
    pub fn evaluate(&self, a: &Matrix) -> Result<bool> {
        let bits = self.encode(a)?;
        let ev = self.compiled.evaluate(&bits)?;
        Ok(ev.outputs()[0])
    }

    /// Like [`TraceCircuit::evaluate`] but uses the layer-parallel evaluator.
    pub fn evaluate_parallel(&self, a: &Matrix) -> Result<bool> {
        let bits = self.encode(a)?;
        let ev = self
            .compiled
            .evaluate_parallel(&bits, tc_circuit::EvalOptions::default())?;
        Ok(ev.outputs()[0])
    }

    /// Answers the trace-threshold query for many matrices through the
    /// embedded serving runtime.
    ///
    /// The runtime packs queries into full bit-sliced lane groups (64–512
    /// lanes per pass, auto-tuned per batch size), shards groups across
    /// worker threads, and rides ragged tails through the same path — so
    /// asking 10k queries costs a few dozen wide passes over the compiled
    /// circuit instead of 10k scalar evaluations.
    pub fn evaluate_many(&self, matrices: &[Matrix]) -> Result<Vec<bool>> {
        self.evaluate_many_with(&self.runtime, matrices)
    }

    /// Like [`TraceCircuit::evaluate_many`] but on a caller-provided
    /// (typically shared) [`Runtime`].
    pub fn evaluate_many_with(&self, runtime: &Runtime, matrices: &[Matrix]) -> Result<Vec<bool>> {
        let mut rows = Vec::with_capacity(matrices.len());
        for a in matrices {
            rows.push(self.encode(a)?);
        }
        let responses = runtime
            .serve_batch(&self.compiled, &rows)
            .map_err(crate::CoreError::from)?;
        Ok(responses.into_iter().map(|r| r.outputs[0]).collect())
    }

    /// The embedded serving runtime (telemetry, backend registry).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    fn encode(&self, a: &Matrix) -> Result<Vec<bool>> {
        check_symmetric_zero_diagonal(a)?;
        let mut bits = vec![false; self.compiled.num_inputs()];
        self.input.assign(a, &mut bits)?;
        Ok(bits)
    }
}

/// Host-side reference: `trace(A³)` computed with exact integer arithmetic.
pub fn trace_of_cube(a: &Matrix) -> i128 {
    let a2 = a.multiply_naive(a).expect("square matrix");
    let a3 = a2.multiply_naive(a).expect("square matrix");
    a3.trace()
}

pub(crate) fn check_symmetric_zero_diagonal(a: &Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(CoreError::NotSymmetricZeroDiagonal);
    }
    for i in 0..a.rows() {
        if a.get(i, i) != 0 {
            return Err(CoreError::NotSymmetricZeroDiagonal);
        }
        for j in (i + 1)..a.cols() {
            if a.get(i, j) != a.get(j, i) {
                return Err(CoreError::NotSymmetricZeroDiagonal);
            }
        }
    }
    Ok(())
}

pub(crate) fn levels_for(n: usize, t: usize) -> Result<u32> {
    if n == 0 {
        return Err(CoreError::DimensionNotPowerOfBase { n, base: t });
    }
    let mut levels = 0u32;
    let mut m = 1usize;
    while m < n {
        m *= t;
        levels += 1;
    }
    if m != n {
        return Err(CoreError::DimensionNotPowerOfBase { n, base: t });
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_matmul::{random_binary_matrix, BilinearAlgorithm, Matrix};

    fn symmetric_zero_diag(n: usize, seed: u64, magnitude: i64) -> Matrix {
        let mut state = seed | 1;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let v = (state % (2 * magnitude as u64 + 1)) as i64 - magnitude;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        m
    }

    fn adjacency(n: usize, density: f64, seed: u64) -> Matrix {
        let raw = random_binary_matrix(n, density, seed);
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let v = raw.get(i, j);
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        m
    }

    #[test]
    fn theorem_4_5_answers_correctly_on_graphs() {
        let config = CircuitConfig::binary(BilinearAlgorithm::strassen());
        let n = 8;
        for d in 1..=3u32 {
            for seed in 0..3u64 {
                let a = adjacency(n, 0.5, seed + 1);
                let true_trace = trace_of_cube(&a);
                // Pick thresholds around the true value to exercise both answers.
                for delta in [-6i128, 0, 6] {
                    let tau = (true_trace + delta) as i64;
                    let circuit = TraceCircuit::theorem_4_5(&config, n, d, tau).unwrap();
                    assert_eq!(
                        circuit.evaluate(&a).unwrap(),
                        true_trace >= tau as i128,
                        "d={d} seed={seed} tau={tau} trace={true_trace}"
                    );
                }
            }
        }
    }

    #[test]
    fn depth_matches_2t_plus_2() {
        let config = CircuitConfig::binary(BilinearAlgorithm::strassen());
        for d in 1..=3u32 {
            let circuit = TraceCircuit::theorem_4_5(&config, 8, d, 10).unwrap();
            let t = circuit.schedule().num_selected() as u32;
            assert!(t <= d);
            assert_eq!(circuit.circuit().depth(), 2 * t + 2, "d={d}");
            // The paper's stated bound.
            assert!(circuit.circuit().depth() <= 2 * d + 5);
        }
    }

    #[test]
    fn theorem_4_4_schedule_is_also_correct() {
        let config = CircuitConfig::binary(BilinearAlgorithm::strassen());
        let a = adjacency(8, 0.6, 99);
        let true_trace = trace_of_cube(&a);
        let circuit = TraceCircuit::theorem_4_4(&config, 8, true_trace as i64).unwrap();
        assert!(circuit.evaluate(&a).unwrap());
        let circuit = TraceCircuit::theorem_4_4(&config, 8, true_trace as i64 + 1).unwrap();
        assert!(!circuit.evaluate(&a).unwrap());
    }

    #[test]
    fn integer_weighted_graphs_are_supported() {
        // The construction works for any symmetric zero-diagonal integer matrix with
        // O(log N)-bit entries, not just 0/1 adjacency matrices.
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 3);
        let a = symmetric_zero_diag(8, 5, 7);
        let true_trace = trace_of_cube(&a);
        for delta in [-10i128, 0, 10] {
            let tau = (true_trace + delta) as i64;
            let circuit = TraceCircuit::theorem_4_5(&config, 8, 2, tau).unwrap();
            assert_eq!(circuit.evaluate(&a).unwrap(), true_trace >= tau as i128);
        }
    }

    #[test]
    fn batched_evaluation_agrees_with_scalar() {
        let config = CircuitConfig::binary(BilinearAlgorithm::strassen());
        let a0 = adjacency(8, 0.5, 77);
        let tau = trace_of_cube(&a0) as i64;
        let circuit = TraceCircuit::theorem_4_5(&config, 8, 2, tau).unwrap();
        let matrices: Vec<Matrix> = (0..70).map(|s| adjacency(8, 0.45, s + 1)).collect();
        let batched = circuit.evaluate_many(&matrices).unwrap();
        assert_eq!(batched.len(), matrices.len());
        for (m, &got) in matrices.iter().zip(&batched) {
            assert_eq!(got, circuit.evaluate(m).unwrap());
        }
        // Both answers must occur, otherwise the test is vacuous.
        assert!(batched.iter().any(|&b| b) && batched.iter().any(|&b| !b));
    }

    #[test]
    fn parallel_evaluation_agrees() {
        let config = CircuitConfig::binary(BilinearAlgorithm::strassen());
        let a = adjacency(8, 0.4, 3);
        let tau = trace_of_cube(&a) as i64;
        let circuit = TraceCircuit::theorem_4_5(&config, 8, 2, tau).unwrap();
        assert_eq!(
            circuit.evaluate(&a).unwrap(),
            circuit.evaluate_parallel(&a).unwrap()
        );
    }

    #[test]
    fn winograd_recipe_also_works() {
        let config = CircuitConfig::binary(BilinearAlgorithm::winograd());
        let a = adjacency(8, 0.5, 21);
        let true_trace = trace_of_cube(&a);
        let circuit = TraceCircuit::theorem_4_5(&config, 8, 2, true_trace as i64).unwrap();
        assert!(circuit.evaluate(&a).unwrap());
    }

    #[test]
    fn asymmetric_or_nonzero_diagonal_matrices_are_rejected() {
        let config = CircuitConfig::binary(BilinearAlgorithm::strassen());
        let circuit = TraceCircuit::theorem_4_5(&config, 4, 1, 1).unwrap();
        let mut bad = Matrix::zeros(4, 4);
        bad.set(0, 1, 1); // not symmetric
        assert!(matches!(
            circuit.evaluate(&bad),
            Err(CoreError::NotSymmetricZeroDiagonal)
        ));
        let mut bad = Matrix::zeros(4, 4);
        bad.set(2, 2, 1); // nonzero diagonal
        assert!(matches!(
            circuit.evaluate(&bad),
            Err(CoreError::NotSymmetricZeroDiagonal)
        ));
    }

    #[test]
    fn dimension_must_be_power_of_t() {
        let config = CircuitConfig::binary(BilinearAlgorithm::strassen());
        assert!(matches!(
            TraceCircuit::theorem_4_5(&config, 6, 1, 1),
            Err(CoreError::DimensionNotPowerOfBase { .. })
        ));
    }
}
