//! Shared configuration for the circuit generators.

use fast_matmul::{BilinearAlgorithm, SparsityProfile};

/// Configuration shared by all circuit generators: the fast matrix-multiplication
/// recipe driving the recursion trees and the bit-width of the input matrix entries.
///
/// The paper assumes entries of `O(log N)` bits; the generators accept any width up to
/// the point where intermediate weights would overflow 62 bits (an error is returned in
/// that case).
#[derive(Debug, Clone)]
pub struct CircuitConfig {
    algorithm: BilinearAlgorithm,
    entry_bits: usize,
}

impl CircuitConfig {
    /// Creates a configuration for signed matrix entries of the given bit-width
    /// (each of the `x⁺`/`x⁻` parts gets `entry_bits` bits, following the paper).
    pub fn new(algorithm: BilinearAlgorithm, entry_bits: usize) -> Self {
        CircuitConfig {
            algorithm,
            entry_bits,
        }
    }

    /// Configuration for 0/1 matrices (adjacency matrices): single-bit entries.
    pub fn binary(algorithm: BilinearAlgorithm) -> Self {
        CircuitConfig::new(algorithm, 1)
    }

    /// The fast matrix-multiplication recipe.
    pub fn algorithm(&self) -> &BilinearAlgorithm {
        &self.algorithm
    }

    /// Bit-width of each input entry (per sign part).
    pub fn entry_bits(&self) -> usize {
        self.entry_bits
    }

    /// The sparsity profile (Definition 2.1 constants) of the configured recipe.
    pub fn sparsity(&self) -> SparsityProfile {
        SparsityProfile::of(&self.algorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = CircuitConfig::new(BilinearAlgorithm::strassen(), 6);
        assert_eq!(c.entry_bits(), 6);
        assert_eq!(c.algorithm().r(), 7);
        assert_eq!(c.sparsity().s_a, 12);
        let b = CircuitConfig::binary(BilinearAlgorithm::strassen());
        assert_eq!(b.entry_bits(), 1);
    }
}
