//! The recursion trees `T_A`, `T_B`, `T_AB` of Section 4 (Figure 2) and the circuitry
//! that materialises selected levels of them.
//!
//! A node of `T_A` at level `h` corresponds to an `N/T^h × N/T^h` matrix that is an
//! integer-weighted sum of blocks of `A`; its children are obtained by applying the `r`
//! product expressions `M_i` of the bilinear recipe.  The circuit materialises only the
//! levels chosen by a [`LevelSchedule`](crate::LevelSchedule): each selected level is
//! computed from the previous one with one depth-2 layer of weighted-sum circuits
//! (Lemma 4.2), and the leaves (level `log_T N`) are the scalars multiplied by the fast
//! algorithm.
//!
//! The same machinery, driven by different coefficient tables, produces:
//!
//! * the leaves of `T_A` (table = `U`),
//! * the leaves of `T_B` (table = `V`),
//! * the leaves of the *coefficient tree* used by the trace circuit (table = `Wᵀ`,
//!   applied to the upper triangle of `A`), and
//! * — in reverse, bottom-up — the levels of `T_AB` (table = `W`), which re-assemble
//!   the scalar products into the matrix product `C` (Lemma 4.6).

use crate::{CoreError, LevelSchedule, Result};
use fast_matmul::BilinearAlgorithm;
use tc_arith::{repr_to_signed, weighted_sum_signed, Repr, SignedInt, UInt};
use tc_circuit::CircuitBuilder;

/// A materialised tree node: a `dim × dim` matrix of circuit-level signed numbers.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Side length of the node's matrix.
    pub dim: usize,
    /// Row-major entries.
    pub entries: Vec<SignedInt>,
}

impl TreeNode {
    /// The entry at `(i, j)`.
    pub fn entry(&self, i: usize, j: usize) -> &SignedInt {
        &self.entries[i * self.dim + j]
    }
}

/// Which coefficient table of the recipe drives a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// `T_A`: products' coefficients over `A` (the `U` table).
    OverA,
    /// `T_B`: products' coefficients over `B` (the `V` table).
    OverB,
    /// The coefficient tree of the trace construction: for each product `M_i`, the
    /// entries of `C` it feeds and with which sign (the transpose of the `W` table).
    OverCTransposed,
}

/// Extracts the `r × T²` coefficient table for a tree kind.
pub fn coefficient_table(alg: &BilinearAlgorithm, kind: TreeKind) -> Vec<Vec<i64>> {
    let t2 = alg.t() * alg.t();
    match kind {
        TreeKind::OverA => (0..alg.r()).map(|i| alg.u_row(i).to_vec()).collect(),
        TreeKind::OverB => (0..alg.r()).map(|i| alg.v_row(i).to_vec()).collect(),
        TreeKind::OverCTransposed => (0..alg.r())
            .map(|i| (0..t2).map(|pq| alg.w_row(pq)[i]).collect())
            .collect(),
    }
}

/// The sparse block-coefficient expansion of every length-`delta` path.
///
/// Entry `p` of the result corresponds to the path with lexicographic index `p`
/// (first step most significant) and lists `(block_row, block_col, coefficient)` for
/// every block of the ancestor with a nonzero coefficient.  The number of listed blocks
/// for path `u` is the paper's `size(u)`; summed over all paths it equals `s_A^delta`
/// (equation (3) of the paper) when the table is `U`.
pub fn path_block_coefficients(
    table: &[Vec<i64>],
    t: usize,
    delta: u32,
) -> Vec<Vec<(usize, usize, i64)>> {
    let r = table.len();
    let mut paths: Vec<Vec<(usize, usize, i64)>> = vec![vec![(0, 0, 1)]];
    for _ in 0..delta {
        let mut next = Vec::with_capacity(paths.len() * r);
        for coeffs in &paths {
            for row in table.iter() {
                let mut extended = Vec::new();
                for &(br, bc, w) in coeffs {
                    for (pos, &c) in row.iter().enumerate() {
                        if c != 0 {
                            let dr = pos / t;
                            let dc = pos % t;
                            extended.push((br * t + dr, bc * t + dc, w * c));
                        }
                    }
                }
                next.push(extended);
            }
        }
        paths = next;
    }
    paths
}

/// For the bottom-up `T_AB` phase: for every block position `(J_row, J_col)` of a parent
/// (at granularity `T^delta`), the list of `(child_path_index, coefficient)` of the
/// children contributing to that block.  Summed over blocks, the list lengths equal
/// `s_C^delta` (equation (5) of the paper).
pub fn block_child_coefficients(
    w_table: &[Vec<i64>],
    t: usize,
    delta: u32,
    r: usize,
) -> Vec<Vec<(usize, i64)>> {
    let bps = t.pow(delta); // blocks per side
    let mut out: Vec<Vec<(usize, i64)>> = vec![Vec::new(); bps * bps];
    for (block_index, slot) in out.iter_mut().enumerate() {
        let block_row = block_index / bps;
        let block_col = block_index % bps;
        // Digits of the block coordinates, most significant first.
        let mut digits = Vec::with_capacity(delta as usize);
        let mut rr = block_row;
        let mut cc = block_col;
        for step in 0..delta {
            let shift = t.pow(delta - 1 - step);
            digits.push(((rr / shift) % t, (cc / shift) % t));
            rr %= shift * t;
            cc %= shift * t;
        }
        // Enumerate child paths q with nonzero coefficient Π_j W[pair_j][q_j].
        let mut acc: Vec<(usize, i64)> = vec![(0, 1)];
        for &(dr, dc) in &digits {
            let pair = dr * t + dc;
            let mut next = Vec::new();
            for &(idx, w) in &acc {
                for (q, &c) in w_table[pair].iter().enumerate() {
                    if c != 0 {
                        next.push((idx * r + q, w * c));
                    }
                }
            }
            acc = next;
        }
        *slot = acc;
    }
    out
}

/// Computes the scalars at the **leaves** of a tree (the values multiplied by the fast
/// algorithm), materialising exactly the levels chosen by `schedule`.
///
/// * `entries` — the `n × n` level-0 matrix as circuit-level signed numbers (use a
///   zero-width [`SignedInt`] for entries that should be treated as 0, e.g. the lower
///   triangle in the trace construction);
/// * `table` — the `r × T²` coefficient table (see [`coefficient_table`]).
///
/// Adds `2·t` layers of depth (two per selected level) and returns the `r^l` leaf
/// scalars in path-lexicographic order.
pub fn compute_tree_leaves(
    builder: &mut CircuitBuilder,
    entries: &[SignedInt],
    n: usize,
    table: &[Vec<i64>],
    t: usize,
    schedule: &LevelSchedule,
) -> Result<Vec<SignedInt>> {
    if entries.len() != n * n {
        return Err(CoreError::InputMismatch {
            reason: "level-0 entry count must be n*n",
        });
    }
    let r = table.len();
    let mut nodes = vec![TreeNode {
        dim: n,
        entries: entries.to_vec(),
    }];
    for (h_prev, h_cur) in schedule.transitions() {
        let delta = h_cur - h_prev;
        let prev_dim = n / t.pow(h_prev);
        let cur_dim = n / t.pow(h_cur);
        let paths = path_block_coefficients(table, t, delta);
        let mut next_nodes = Vec::with_capacity(nodes.len() * r.pow(delta));
        for ancestor in &nodes {
            debug_assert_eq!(ancestor.dim, prev_dim);
            for coeffs in &paths {
                let mut node_entries = Vec::with_capacity(cur_dim * cur_dim);
                for x in 0..cur_dim {
                    for y in 0..cur_dim {
                        let summands: Vec<(&SignedInt, i64)> = coeffs
                            .iter()
                            .map(|&(br, bc, w)| {
                                (ancestor.entry(br * cur_dim + x, bc * cur_dim + y), w)
                            })
                            .filter(|(e, _)| e.width() > 0)
                            .collect();
                        if summands.is_empty() {
                            node_entries.push(zero_signed());
                        } else {
                            node_entries.push(weighted_sum_signed(builder, &summands)?);
                        }
                    }
                }
                next_nodes.push(TreeNode {
                    dim: cur_dim,
                    entries: node_entries,
                });
            }
        }
        nodes = next_nodes;
    }
    // The leaves are 1x1 nodes; flatten in node order (= path-lexicographic order).
    Ok(nodes
        .into_iter()
        .map(|node| {
            debug_assert_eq!(node.dim, 1);
            node.entries
                .into_iter()
                .next()
                .expect("leaf node has one entry")
        })
        .collect())
}

/// Re-assembles the `r^l` scalar-product *representations* (the leaves of `T_AB`) into
/// the `N²` entries of the matrix product `C`, materialising the same selected levels
/// bottom-up (Lemma 4.6).
///
/// Adds `2·t` layers of depth and returns the entries of `C` row-major, as signed
/// numbers.
pub fn combine_product_tree(
    builder: &mut CircuitBuilder,
    leaf_reprs: Vec<Repr>,
    alg: &BilinearAlgorithm,
    n: usize,
    schedule: &LevelSchedule,
) -> Result<Vec<SignedInt>> {
    let t = alg.t();
    let r = alg.r();
    let w_table: Vec<Vec<i64>> = (0..t * t).map(|pq| alg.w_row(pq).to_vec()).collect();
    let expected_leaves = r.pow(schedule.total_levels());
    if leaf_reprs.len() != expected_leaves {
        return Err(CoreError::InputMismatch {
            reason: "number of leaf products must be r^(log_T N)",
        });
    }

    // Current level data, stored as representations of each node entry.  At the leaf
    // level each node is a 1x1 matrix whose single entry is the product representation.
    let mut level_reprs: Vec<Vec<Repr>> = leaf_reprs.into_iter().map(|r| vec![r]).collect();
    let mut level_dim = 1usize;

    let transitions: Vec<(u32, u32)> = schedule.transitions().collect();
    for &(h_parent, h_child) in transitions.iter().rev() {
        let delta = h_child - h_parent;
        let parent_dim = n / t.pow(h_parent);
        let child_dim = n / t.pow(h_child);
        debug_assert_eq!(child_dim, level_dim);
        let bps = t.pow(delta);
        let block_coeffs = block_child_coefficients(&w_table, t, delta, r);
        let num_parents = level_reprs.len() / r.pow(delta);

        let mut next_level: Vec<Vec<Repr>> = Vec::with_capacity(num_parents);
        for pv in 0..num_parents {
            let child_base = pv * r.pow(delta);
            let mut parent_entries: Vec<Option<SignedInt>> = vec![None; parent_dim * parent_dim];
            for (block_index, contributions) in block_coeffs.iter().enumerate() {
                let block_row = block_index / bps;
                let block_col = block_index % bps;
                for x in 0..child_dim {
                    for y in 0..child_dim {
                        let mut combined = Repr::zero();
                        for &(q_idx, w) in contributions {
                            let child = &level_reprs[child_base + q_idx][x * child_dim + y];
                            combined.add(&child.scale(w)?);
                        }
                        let value = repr_to_signed(builder, &combined)?;
                        let px = block_row * child_dim + x;
                        let py = block_col * child_dim + y;
                        parent_entries[px * parent_dim + py] = Some(value);
                    }
                }
            }
            let entries: Vec<Repr> = parent_entries
                .into_iter()
                .map(|e| {
                    e.expect("every parent entry is covered by exactly one block")
                        .to_repr()
                })
                .collect();
            next_level.push(entries);
        }
        level_reprs = next_level;
        level_dim = parent_dim;
    }

    debug_assert_eq!(level_reprs.len(), 1);
    debug_assert_eq!(level_dim, n);
    // The final level's entries were just produced by repr_to_signed and then turned
    // back into representations for uniformity; binarise them one more time only if they
    // are not already plain signed numbers.  To avoid an extra layer we re-run the last
    // transition keeping the SignedInt directly, so here we simply rebuild them from the
    // representations without adding gates: each representation is exactly a SignedInt's
    // to_repr, so we convert back structurally.
    let root = level_reprs.into_iter().next().expect("root exists");
    root.into_iter()
        .map(|repr| signed_from_positional_repr(&repr))
        .collect()
}

/// Rebuilds a [`SignedInt`] from a representation that was produced by
/// [`SignedInt::to_repr`] (positive powers of two first, then negative).  This is a
/// structural inverse used to avoid re-binarising the already-binary root entries of
/// `T_AB`; it adds no gates.
fn signed_from_positional_repr(repr: &Repr) -> Result<SignedInt> {
    let mut pos: Vec<(u32, tc_circuit::Wire)> = Vec::new();
    let mut neg: Vec<(u32, tc_circuit::Wire)> = Vec::new();
    for &(wire, w) in repr.terms() {
        if w > 0 && (w as u64).is_power_of_two() {
            pos.push(((w as u64).trailing_zeros(), wire));
        } else if w < 0 && (w.unsigned_abs()).is_power_of_two() {
            neg.push((w.unsigned_abs().trailing_zeros(), wire));
        } else {
            return Err(CoreError::InputMismatch {
                reason: "representation is not positional; cannot rebuild a signed number",
            });
        }
    }
    pos.sort_unstable_by_key(|&(p, _)| p);
    neg.sort_unstable_by_key(|&(p, _)| p);
    let contiguous = |bits: &[(u32, tc_circuit::Wire)]| {
        bits.iter().enumerate().all(|(i, &(p, _))| p as usize == i)
    };
    if !contiguous(&pos) || !contiguous(&neg) {
        return Err(CoreError::InputMismatch {
            reason: "representation has gaps; cannot rebuild a signed number",
        });
    }
    Ok(SignedInt::new(
        UInt::from_wires(pos.into_iter().map(|(_, w)| w).collect()),
        UInt::from_wires(neg.into_iter().map(|(_, w)| w).collect()),
    ))
}

/// A zero-valued circuit number (width 0); used for masked entries.
pub fn zero_signed() -> SignedInt {
    SignedInt::new(UInt::from_wires(Vec::new()), UInt::from_wires(Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_matmul::SparsityProfile;

    #[test]
    fn path_coefficient_totals_match_equation_3() {
        // Σ_u size(u) over all paths of length delta equals s_A^delta (eq. 3).
        let alg = BilinearAlgorithm::strassen();
        let profile = SparsityProfile::of(&alg);
        let table = coefficient_table(&alg, TreeKind::OverA);
        for delta in 1..=4u32 {
            let paths = path_block_coefficients(&table, alg.t(), delta);
            assert_eq!(paths.len(), alg.r().pow(delta));
            let total: usize = paths.iter().map(|p| p.len()).sum();
            assert_eq!(total, profile.s_a.pow(delta), "delta={delta}");
        }
        // And for the B-side table the total is s_B^delta.
        let table_b = coefficient_table(&alg, TreeKind::OverB);
        let total_b: usize = path_block_coefficients(&table_b, alg.t(), 3)
            .iter()
            .map(|p| p.len())
            .sum();
        assert_eq!(total_b, profile.s_b.pow(3));
    }

    #[test]
    fn figure_2_example_node() {
        // Figure 2: the node reached by path (M7, M7) for Strassen is
        // (A12 - A22)12 - (A12 - A22)22, a weighted sum of 4 blocks of A:
        // (A12)12 - (A22)12 - (A12)22 + (A22)22.
        let alg = BilinearAlgorithm::strassen();
        let table = coefficient_table(&alg, TreeKind::OverA);
        let paths = path_block_coefficients(&table, 2, 2);
        // Path (7,7) in 1-based product numbering = (6,6) 0-based; lexicographic index
        // 6*7 + 6 = 48.
        let coeffs = &paths[48];
        assert_eq!(coeffs.len(), 4);
        // Blocks at granularity 4: (A12)12 = block (row 0*2+0? ...) — verify the exact
        // set by value: {(0,3,+1),(1,3,... } easier: check multiset of coefficients and
        // that block columns are in the right half (A12/A22 blocks of A) and rows split.
        let sum_of_coeffs: i64 = coeffs.iter().map(|&(_, _, w)| w).sum();
        assert_eq!(sum_of_coeffs, 0, "two +1 and two -1 coefficients");
        assert!(
            coeffs.iter().all(|&(_, bc, _)| bc >= 2),
            "all blocks come from the right half (A12 or A22): {coeffs:?}"
        );
    }

    #[test]
    fn tab_block_coefficients_match_equation_5() {
        let alg = BilinearAlgorithm::strassen();
        let profile = SparsityProfile::of(&alg);
        let w_table: Vec<Vec<i64>> = (0..4).map(|pq| alg.w_row(pq).to_vec()).collect();
        for delta in 1..=3u32 {
            let blocks = block_child_coefficients(&w_table, 2, delta, alg.r());
            assert_eq!(blocks.len(), 4usize.pow(delta));
            let total: usize = blocks.iter().map(|b| b.len()).sum();
            assert_eq!(total, profile.s_c.pow(delta), "delta={delta}");
        }
    }

    #[test]
    fn c_prime_counts_appear_at_delta_1() {
        // For delta = 1 the per-block contribution counts are exactly c'_j = 4,2,2,4.
        let alg = BilinearAlgorithm::strassen();
        let w_table: Vec<Vec<i64>> = (0..4).map(|pq| alg.w_row(pq).to_vec()).collect();
        let blocks = block_child_coefficients(&w_table, 2, 1, alg.r());
        let counts: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
        assert_eq!(counts, vec![4, 2, 2, 4]);
    }
}
