//! The matrix-product circuits: `C = A·B` in constant depth (Theorems 4.8 and 4.9) and
//! the uniform-schedule variant the paper equates with Theorem 4.1.
//!
//! Structure (Section 4.4): compute the leaves of `T_A` and `T_B` top-down (depth
//! `2t`), multiply corresponding leaves with the depth-1 circuit of Lemma 3.3, then
//! re-assemble the product representations bottom-up through the selected levels of
//! `T_AB` (depth `2t`, Lemma 4.6).  Total depth `4t + 1` with `t ≤ d` (Theorem 4.9).

use crate::matrix_input::MatrixInput;
use crate::schedule::LevelSchedule;
use crate::trace::levels_for;
use crate::tree::{coefficient_table, combine_product_tree, compute_tree_leaves, TreeKind};
use crate::{CircuitConfig, CoreError, Result};
use fast_matmul::Matrix;
use tc_arith::{product_signed_repr, InputAllocator, Repr, SignedInt};
use tc_circuit::{Circuit, CircuitBuilder, CircuitStats, CompiledCircuit, EvalOptions, PaperBound};
use tc_runtime::{Detail, Runtime};

/// A constant-depth threshold circuit computing the product of two `N×N` integer
/// matrices with bounded-width entries.
///
/// The circuit is lowered to its compiled CSR form once at construction;
/// every evaluation entry point (scalar, parallel, batched) runs off that
/// form, so multiplying many matrix pairs never rebuilds per-gate state.
/// Batched products route through an embedded [`Runtime`];
/// [`MatmulCircuit::evaluate_many_with`] accepts a shared one.
#[derive(Debug)]
pub struct MatmulCircuit {
    circuit: Circuit,
    compiled: CompiledCircuit,
    a: MatrixInput,
    b: MatrixInput,
    output: Vec<SignedInt>,
    n: usize,
    schedule: LevelSchedule,
    bound: PaperBound,
    runtime: Runtime,
}

impl MatmulCircuit {
    /// Builds the matrix-product circuit for an explicit level schedule.
    pub fn with_schedule(
        config: &CircuitConfig,
        n: usize,
        schedule: LevelSchedule,
    ) -> Result<Self> {
        let alg = config.algorithm();
        let t = alg.t();
        let levels = levels_for(n, t)?;
        if schedule.total_levels() != levels {
            return Err(CoreError::InvalidSchedule {
                reason: "schedule leaf level must equal log_T n",
            });
        }

        let mut alloc = InputAllocator::new();
        let a = MatrixInput::allocate(&mut alloc, n, config.entry_bits());
        let b = MatrixInput::allocate(&mut alloc, n, config.entry_bits());
        let mut builder = CircuitBuilder::new(alloc.num_inputs());

        let u_table = coefficient_table(alg, TreeKind::OverA);
        let v_table = coefficient_table(alg, TreeKind::OverB);
        let leaves_a = compute_tree_leaves(&mut builder, a.entries(), n, &u_table, t, &schedule)?;
        let leaves_b = compute_tree_leaves(&mut builder, b.entries(), n, &v_table, t, &schedule)?;

        // Scalar products of corresponding leaves (Lemma 3.3, depth 1), kept as
        // representations and consumed directly by the first bottom-up level.
        let mut products = Vec::with_capacity(leaves_a.len());
        for (la, lb) in leaves_a.iter().zip(&leaves_b) {
            if la.width() == 0 || lb.width() == 0 {
                products.push(Repr::zero());
            } else {
                products.push(product_signed_repr(&mut builder, la, lb)?);
            }
        }

        let output = combine_product_tree(&mut builder, products, alg, n, &schedule)?;
        for entry in &output {
            entry.mark_as_outputs(&mut builder);
        }

        let circuit = builder.build();
        let compiled = circuit.compile()?;
        let bound = crate::bounds::matmul_paper_bound(config, n, &schedule);
        Ok(MatmulCircuit {
            circuit,
            compiled,
            a,
            b,
            output,
            n,
            schedule,
            bound,
            runtime: Runtime::new(),
        })
    }

    /// The circuit of **Theorem 4.9**: depth at most `4d + 1` and `Õ(d·N^{ω+cγ^d})`
    /// gates.
    pub fn theorem_4_9(config: &CircuitConfig, n: usize, d: u32) -> Result<Self> {
        let levels = levels_for(n, config.algorithm().t())?;
        let schedule = LevelSchedule::for_theorem_4_5(&config.sparsity(), levels, d)?;
        MatmulCircuit::with_schedule(config, n, schedule)
    }

    /// The circuit of **Theorem 4.8**: depth `O(log log N)` and `Õ(N^ω)` gates.
    pub fn theorem_4_8(config: &CircuitConfig, n: usize) -> Result<Self> {
        let levels = levels_for(n, config.algorithm().t())?;
        let schedule = LevelSchedule::for_theorem_4_4(&config.sparsity(), levels)?;
        MatmulCircuit::with_schedule(config, n, schedule)
    }

    /// The uniform-schedule variant with `d` selected levels, which the paper states is
    /// "comparable to Theorem 4.1" (`O(d)` depth, `Õ(d·N^{ω+1/d})` gates).
    pub fn theorem_4_1(config: &CircuitConfig, n: usize, d: u32) -> Result<Self> {
        let levels = levels_for(n, config.algorithm().t())?;
        let schedule = LevelSchedule::uniform(levels, d)?;
        MatmulCircuit::with_schedule(config, n, schedule)
    }

    /// The underlying threshold circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The compiled CSR form shared by every evaluation entry point.
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    /// The input layout for `A`.
    pub fn input_a(&self) -> &MatrixInput {
        &self.a
    }

    /// The input layout for `B`.
    pub fn input_b(&self) -> &MatrixInput {
        &self.b
    }

    /// The circuit-level output entries of `C = A·B`, row-major.
    pub fn output_entries(&self) -> &[SignedInt] {
        &self.output
    }

    /// Matrix dimension `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The level schedule used by the construction.
    pub fn schedule(&self) -> &LevelSchedule {
        &self.schedule
    }

    /// The closed-form paper bound this instance must satisfy
    /// (see [`crate::bounds::matmul_paper_bound`]).
    pub fn paper_bound(&self) -> &PaperBound {
        &self.bound
    }

    /// Complexity statistics, read from the stored compiled form.
    pub fn stats(&self) -> CircuitStats {
        self.compiled.stats()
    }

    /// Encodes the operands, evaluates the circuit and decodes the product matrix.
    pub fn evaluate(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        let bits = self.encode(a, b)?;
        let ev = self.compiled.evaluate(&bits)?;
        Ok(self.decode(&bits, &ev))
    }

    /// Like [`MatmulCircuit::evaluate`] but uses the layer-parallel evaluator.
    pub fn evaluate_parallel(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        let bits = self.encode(a, b)?;
        let ev = self
            .compiled
            .evaluate_parallel(&bits, EvalOptions::default())?;
        Ok(self.decode(&bits, &ev))
    }

    /// Multiplies many matrix pairs through the embedded serving runtime:
    /// pairs ride bit-sliced lane groups (64–512 lanes per pass, auto-tuned)
    /// sharded across worker threads.
    pub fn evaluate_many(&self, pairs: &[(Matrix, Matrix)]) -> Result<Vec<Matrix>> {
        self.evaluate_many_with(&self.runtime, pairs)
    }

    /// Like [`MatmulCircuit::evaluate_many`] but on a caller-provided
    /// (typically shared) [`Runtime`].
    pub fn evaluate_many_with(
        &self,
        runtime: &Runtime,
        pairs: &[(Matrix, Matrix)],
    ) -> Result<Vec<Matrix>> {
        // Decoding the product reads interior wires, so responses must carry
        // the full per-gate evaluation (Detail::Full). Those are num_gates
        // bools each — serve in bounded windows and decode/drop each window
        // so peak memory never grows with the total pair count. The window
        // shrinks with circuit size (~128 MB of evaluations at most) but
        // always holds at least one full 64-lane group.
        let window_len = ((128usize << 20) / self.compiled.num_gates().max(1)).clamp(64, 2048);
        let mut products = Vec::with_capacity(pairs.len());
        for window in pairs.chunks(window_len) {
            let mut rows = Vec::with_capacity(window.len());
            for (a, b) in window {
                rows.push(self.encode(a, b)?);
            }
            let responses = runtime
                .serve_batch_detailed(&self.compiled, &rows, Detail::Full)
                .map_err(crate::CoreError::from)?;
            for (bits, response) in rows.iter().zip(&responses) {
                let ev = response
                    .evaluation
                    .as_ref()
                    .expect("Detail::Full responses carry the evaluation");
                products.push(self.decode(bits, ev));
            }
        }
        Ok(products)
    }

    /// The embedded serving runtime (telemetry, backend registry).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    fn encode(&self, a: &Matrix, b: &Matrix) -> Result<Vec<bool>> {
        let mut bits = vec![false; self.compiled.num_inputs()];
        self.a.assign(a, &mut bits)?;
        self.b.assign(b, &mut bits)?;
        Ok(bits)
    }

    fn decode(&self, bits: &[bool], ev: &tc_circuit::Evaluation) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| {
            self.output[i * self.n + j].value(bits, ev)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_matmul::{random_matrix, BilinearAlgorithm};

    #[test]
    fn theorem_4_9_computes_products_exactly() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 3);
        for n in [2usize, 4] {
            for d in 1..=2u32 {
                let mm = MatmulCircuit::theorem_4_9(&config, n, d).unwrap();
                for seed in 0..3u64 {
                    let a = random_matrix(n, 7, seed * 2 + 1);
                    let b = random_matrix(n, 7, seed * 2 + 2);
                    let expected = a.multiply_naive(&b).unwrap();
                    assert_eq!(
                        mm.evaluate(&a, &b).unwrap(),
                        expected,
                        "n={n} d={d} seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn depth_is_4t_plus_1() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        for (n, d) in [(4usize, 1u32), (4, 2), (8, 2)] {
            let mm = MatmulCircuit::theorem_4_9(&config, n, d).unwrap();
            let t = mm.schedule().num_selected() as u32;
            assert!(t <= d);
            assert_eq!(mm.circuit().depth(), 4 * t + 1, "n={n} d={d}");
            assert!(mm.circuit().depth() <= 4 * d + 1);
        }
    }

    #[test]
    fn n8_product_with_two_levels() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        let mm = MatmulCircuit::theorem_4_9(&config, 8, 2).unwrap();
        let a = random_matrix(8, 3, 5);
        let b = random_matrix(8, 3, 6);
        assert_eq!(mm.evaluate(&a, &b).unwrap(), a.multiply_naive(&b).unwrap());
    }

    #[test]
    fn uniform_schedule_variant_is_correct_too() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        let mm = MatmulCircuit::theorem_4_1(&config, 4, 2).unwrap();
        let a = random_matrix(4, 3, 11);
        let b = random_matrix(4, 3, 12);
        assert_eq!(mm.evaluate(&a, &b).unwrap(), a.multiply_naive(&b).unwrap());
        assert_eq!(mm.schedule().levels(), &[1, 2]);
    }

    #[test]
    fn theorem_4_8_loglog_schedule_is_correct() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        let mm = MatmulCircuit::theorem_4_8(&config, 4).unwrap();
        let a = random_matrix(4, 3, 21);
        let b = random_matrix(4, 3, 22);
        assert_eq!(mm.evaluate(&a, &b).unwrap(), a.multiply_naive(&b).unwrap());
    }

    #[test]
    fn batched_evaluation_agrees_with_scalar() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        let mm = MatmulCircuit::theorem_4_9(&config, 4, 2).unwrap();
        let pairs: Vec<(Matrix, Matrix)> = (0..67)
            .map(|s| {
                (
                    random_matrix(4, 3, 2 * s + 1),
                    random_matrix(4, 3, 2 * s + 2),
                )
            })
            .collect();
        let products = mm.evaluate_many(&pairs).unwrap();
        assert_eq!(products.len(), pairs.len());
        for ((a, b), c) in pairs.iter().zip(&products) {
            assert_eq!(c, &a.multiply_naive(b).unwrap());
        }
    }

    #[test]
    fn parallel_evaluation_agrees() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        let mm = MatmulCircuit::theorem_4_9(&config, 4, 2).unwrap();
        let a = random_matrix(4, 3, 31);
        let b = random_matrix(4, 3, 32);
        assert_eq!(
            mm.evaluate(&a, &b).unwrap(),
            mm.evaluate_parallel(&a, &b).unwrap()
        );
    }

    #[test]
    fn winograd_and_tensor_square_recipes_work() {
        let w_config = CircuitConfig::new(BilinearAlgorithm::winograd(), 2);
        let mm = MatmulCircuit::theorem_4_9(&w_config, 4, 2).unwrap();
        let a = random_matrix(4, 3, 41);
        let b = random_matrix(4, 3, 42);
        assert_eq!(mm.evaluate(&a, &b).unwrap(), a.multiply_naive(&b).unwrap());

        let s2 = BilinearAlgorithm::strassen().tensor_power(2).unwrap();
        let s2_config = CircuitConfig::new(s2, 2);
        let mm = MatmulCircuit::theorem_4_9(&s2_config, 4, 1).unwrap();
        assert_eq!(mm.evaluate(&a, &b).unwrap(), a.multiply_naive(&b).unwrap());
    }

    #[test]
    fn negative_and_boundary_entries() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 3);
        let mm = MatmulCircuit::theorem_4_9(&config, 4, 2).unwrap();
        let a = Matrix::from_fn(4, 4, |i, j| if (i + j) % 2 == 0 { 7 } else { -7 });
        let b = Matrix::from_fn(4, 4, |i, j| ((i * 4 + j) as i64 % 15) - 7);
        assert_eq!(mm.evaluate(&a, &b).unwrap(), a.multiply_naive(&b).unwrap());
    }

    #[test]
    fn oversized_entries_are_rejected_at_evaluation() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        let mm = MatmulCircuit::theorem_4_9(&config, 2, 1).unwrap();
        let too_big = Matrix::from_fn(2, 2, |_, _| 4);
        let ok = Matrix::zeros(2, 2);
        assert!(mm.evaluate(&too_big, &ok).is_err());
    }

    #[test]
    fn dimension_must_be_power_of_t() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        assert!(matches!(
            MatmulCircuit::theorem_4_9(&config, 6, 1),
            Err(CoreError::DimensionNotPowerOfBase { .. })
        ));
    }
}
