//! Closed-form paper bounds for every constructor, packaged as
//! [`tc_circuit::PaperBound`] values for certification against compiled
//! artifacts.
//!
//! Each bound is derived from the paper's counting arguments, not from the
//! built circuit — [`PaperBound::certify`] then asserts the compiled artifact
//! against it, so a construction that silently grows deeper or larger than
//! the theorem allows fails verification.  The formulas, next to their
//! theorems:
//!
//! * **Naive triangle circuit** (Section 1): one gate per vertex triple plus
//!   one output gate — exactly `C(N,3) + 1` gates, depth 2, and
//!   `4·C(N,3)` edges (fan-in 3 per triple gate plus one edge into the
//!   output gate).
//! * **Naive trace circuit** (Lemma 3.3 baseline): one depth-1 product block
//!   of `8·b³` gates per vertex triple plus one output gate — exactly
//!   `C(N,3)·8·b³ + 1` gates, depth 2, `32·C(N,3)·b³` edges (fan-in 3 per
//!   product gate plus one edge into the output gate).
//! * **Naive matmul circuit** (definition-based, Section 1): `N³` signed
//!   scalar products of `4·b²` gates each followed by one binarisation per
//!   entry of `C` — depth 3, gate count given exactly by
//!   [`naive_matmul_gate_count`].
//! * **Trace circuit** (Theorems 4.4/4.5, Section 4.3): depth exactly
//!   `2t + 2` with `t` the number of selected levels (the paper states the
//!   looser `2d + 5`); gates at most the three tree phases of Lemma 4.2/4.3
//!   ([`tree_phase_cost`], exact for dense ±1 recipes, an upper bound for
//!   the masked coefficient tree) plus `r^l · 8·w_A·w_B·w_Q` for the
//!   Lemma 3.3 triple products over the leaf width profile, plus the single
//!   output gate.
//! * **Matmul circuit** (Theorems 4.8/4.9, Section 4.4): depth exactly
//!   `4t + 1`; gates at most the two top-down tree phases plus
//!   `r^l · 4·w_A·w_B` for the Lemma 3.3 leaf products plus the bottom-up
//!   `T_AB` phase (Lemma 4.6), costed by [`combine_phase_gate_bound`] via a
//!   worst-case weight-multiset recursion over the exact per-block
//!   contribution lists of the recipe's `W` table.
//!
//! The combine-phase model deliberately avoids the unit-weight
//! `weighted_sum_gate_count` shortcut: the representations flowing out of
//! the product layer carry power-of-two weights with multiplicity, whose
//! per-bit carry residues exceed the unit-weight model's.  Costing each
//! binarisation with [`repr_to_binary_gate_count`] over an explicit
//! superset weight multiset keeps the bound sound (the gate count of
//! `repr_to_binary` is monotone under multiset inclusion).

use crate::analysis::{naive_matmul_gate_count, tree_phase_cost};
use crate::schedule::LevelSchedule;
use crate::tree::{block_child_coefficients, TreeKind};
use crate::CircuitConfig;
use fast_matmul::BilinearAlgorithm;
use tc_arith::{bits_of, repr_to_binary_gate_count};
use tc_circuit::{Bound, PaperBound};

/// `C(n, 3)` without intermediate overflow for any practical `n`.
fn choose3(n: u128) -> u128 {
    if n < 3 {
        0
    } else {
        n * (n - 1) * (n - 2) / 6
    }
}

/// The bound of the naive depth-2 triangle circuit (Section 1):
/// `C(N,3) + 1` gates, `4·C(N,3)` edges.
pub fn naive_triangle_paper_bound(n: usize) -> PaperBound {
    let triples = choose3(n as u128);
    let (depth, gates, edges) = if triples == 0 {
        // Fewer than 3 vertices: a single constant gate reading the one-wire.
        (1, 1, 1)
    } else {
        (2, triples + 1, 4 * triples)
    };
    PaperBound {
        constructor: "NaiveTriangleCircuit",
        theorem: "Section 1 baseline",
        geometry: format!("n={n}"),
        depth: Bound::Exact(depth),
        gates: Bound::Exact(gates),
        edges: Some(Bound::Exact(edges)),
    }
}

/// The bound of the naive depth-2 trace circuit (Lemma 3.3 baseline):
/// `C(N,3)·8·b³ + 1` gates, `32·C(N,3)·b³` edges.
pub fn naive_trace_paper_bound(n: usize, entry_bits: usize) -> PaperBound {
    let triples = choose3(n as u128);
    let b = entry_bits as u128;
    let (depth, gates, edges) = if triples == 0 {
        (1, 1, 1)
    } else {
        let products = triples * 8 * b * b * b;
        // Each product gate has fan-in 3 and feeds one edge into the output.
        (2, products + 1, 4 * products)
    };
    PaperBound {
        constructor: "NaiveTraceCircuit",
        theorem: "Lemma 3.3 baseline",
        geometry: format!("n={n}, b={entry_bits}"),
        depth: Bound::Exact(depth),
        gates: Bound::Exact(gates),
        edges: Some(Bound::Exact(edges)),
    }
}

/// The bound of the naive depth-3 matmul circuit (definition-based):
/// gate count exactly [`naive_matmul_gate_count`].
pub fn naive_matmul_paper_bound(n: usize, entry_bits: usize) -> PaperBound {
    PaperBound {
        constructor: "NaiveMatmulCircuit",
        theorem: "Section 1 baseline",
        geometry: format!("n={n}, b={entry_bits}"),
        depth: Bound::Exact(3),
        gates: Bound::Exact(naive_matmul_gate_count(n as u64, entry_bits as u32)),
        edges: None,
    }
}

/// The bound of [`TraceCircuit`](crate::trace::TraceCircuit) for a given
/// schedule: depth exactly `2t + 2`, gates at most
/// `cost(T_A) + cost(T_B) + cost(T_Q) + r^l·8·w_A·w_B·w_Q + 1`.
pub fn trace_paper_bound(config: &CircuitConfig, n: usize, schedule: &LevelSchedule) -> PaperBound {
    let alg = config.algorithm();
    let b = config.entry_bits() as u32;
    let cost_a = tree_phase_cost(alg, TreeKind::OverA, n, b, schedule);
    let cost_b = tree_phase_cost(alg, TreeKind::OverB, n, b, schedule);
    let cost_q = tree_phase_cost(alg, TreeKind::OverCTransposed, n, b, schedule);
    let leaves = (alg.r() as u128).pow(schedule.total_levels());
    let products = leaves
        * 8
        * cost_a.max_leaf_width() as u128
        * cost_b.max_leaf_width() as u128
        * cost_q.max_leaf_width() as u128;
    let t = schedule.num_selected() as u128;
    let gates = cost_a.total_gates + cost_b.total_gates + cost_q.total_gates + products + 1;
    PaperBound {
        constructor: "TraceCircuit",
        theorem: "Theorems 4.4/4.5",
        geometry: format!("n={n}, b={b}, t={t}"),
        depth: Bound::Exact(2 * t + 2),
        gates: Bound::AtMost(gates),
        edges: None,
    }
}

/// The bound of [`MatmulCircuit`](crate::matmul::MatmulCircuit) for a given
/// schedule: depth exactly `4t + 1`, gates at most
/// `cost(T_A) + cost(T_B) + r^l·4·w_A·w_B + cost(T_AB)`.
pub fn matmul_paper_bound(
    config: &CircuitConfig,
    n: usize,
    schedule: &LevelSchedule,
) -> PaperBound {
    let alg = config.algorithm();
    let b = config.entry_bits() as u32;
    let cost_a = tree_phase_cost(alg, TreeKind::OverA, n, b, schedule);
    let cost_b = tree_phase_cost(alg, TreeKind::OverB, n, b, schedule);
    let leaves = (alg.r() as u128).pow(schedule.total_levels());
    let wa = cost_a.max_leaf_width();
    let wb = cost_b.max_leaf_width();
    let products = leaves * 4 * wa as u128 * wb as u128;
    // Worst-case weight multiset of one sign part of a leaf product
    // representation: the four unsigned sub-products contribute two `+2^(i+j)`
    // and two `-2^(i+j)` terms per bit pair, so each sign part holds at most
    // two copies of every `2^(i+j)`.
    let mut leaf_part = Vec::with_capacity(2 * wa as usize * wb as usize);
    for i in 0..wa {
        for j in 0..wb {
            let w = 1i64 << (i + j);
            leaf_part.push(w);
            leaf_part.push(w);
        }
    }
    let combine = combine_phase_gate_bound(alg, n, schedule, leaf_part);
    let t = schedule.num_selected() as u128;
    let gates = cost_a.total_gates + cost_b.total_gates + products + combine;
    PaperBound {
        constructor: "MatmulCircuit",
        theorem: "Theorems 4.8/4.9",
        geometry: format!("n={n}, b={b}, t={t}"),
        depth: Bound::Exact(4 * t + 1),
        gates: Bound::AtMost(gates),
        edges: None,
    }
}

/// Upper bound on the gates of the bottom-up `T_AB` phase (Lemma 4.6).
///
/// Mirrors `combine_product_tree` transition by transition.  The state
/// `part` is a weight multiset that is a superset of the weight multiset of
/// either sign part of **any** entry representation at the current level.
/// For each parent block the combined representation folds, per `(q, w)`
/// contribution, `|w|` times one sign part of a child — a sub-multiset of
/// `|w|·part` — so costing the two binarisations of `repr_to_signed` with
/// `repr_to_binary_gate_count` over the concatenation of those scaled
/// multisets is an upper bound on the gates actually emitted.
fn combine_phase_gate_bound(
    alg: &BilinearAlgorithm,
    n: usize,
    schedule: &LevelSchedule,
    leaf_part: Vec<i64>,
) -> u128 {
    let t = alg.t();
    let r = alg.r();
    let w_table: Vec<Vec<i64>> = (0..t * t).map(|pq| alg.w_row(pq).to_vec()).collect();
    let mut part = leaf_part;
    let mut level_count = (r as u128).pow(schedule.total_levels());
    let mut total: u128 = 0;
    let transitions: Vec<(u32, u32)> = schedule.transitions().collect();
    for &(h_parent, h_child) in transitions.iter().rev() {
        let delta = h_child - h_parent;
        let child_dim = (n / t.pow(h_child)) as u128;
        let num_parents = level_count / (r as u128).pow(delta);
        let blocks = block_child_coefficients(&w_table, t, delta, r);
        let mut widest: u32 = 0;
        let mut per_parent: u128 = 0;
        for contributions in &blocks {
            let mut merged: Vec<i64> = Vec::with_capacity(contributions.len() * part.len());
            for &(_, w) in contributions {
                let m = w.unsigned_abs() as i64;
                merged.extend(part.iter().map(|&x| x * m));
            }
            let max_value: u128 = merged.iter().map(|&x| x as u128).sum();
            widest = widest.max(bits_of(max_value));
            let per_entry = 2 * repr_to_binary_gate_count(&merged) as u128;
            per_parent += child_dim * child_dim * per_entry;
        }
        total += num_parents * per_parent;
        // After binarisation every entry is a plain signed number: each sign
        // part carries at most one term per power of two below `widest`.
        part = (0..widest).map(|i| 1i64 << i).collect();
        level_count = num_parents;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::MatmulCircuit;
    use crate::naive::{NaiveMatmulCircuit, NaiveTraceCircuit, NaiveTriangleCircuit};
    use crate::trace::TraceCircuit;
    use fast_matmul::BilinearAlgorithm;

    #[test]
    fn naive_bounds_certify_their_circuits() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        for n in [3usize, 5, 8] {
            let tri = NaiveTriangleCircuit::new(n, 2).unwrap();
            assert!(
                tri.paper_bound().certify(tri.compiled()).is_valid(),
                "n={n}"
            );
            let tr = NaiveTraceCircuit::new(&config, n, 3).unwrap();
            assert!(tr.paper_bound().certify(tr.compiled()).is_valid(), "n={n}");
        }
        let mm = NaiveMatmulCircuit::new(&config, 3).unwrap();
        assert!(mm.paper_bound().certify(mm.compiled()).is_valid());
        // The degenerate tiny-graph case is covered too.
        let tiny = NaiveTriangleCircuit::new(2, 1).unwrap();
        assert!(tiny.paper_bound().certify(tiny.compiled()).is_valid());
    }

    #[test]
    fn trace_bounds_certify_across_schedules_and_recipes() {
        for alg in [BilinearAlgorithm::strassen(), BilinearAlgorithm::winograd()] {
            let config = CircuitConfig::new(alg, 2);
            for (n, d) in [(4usize, 1u32), (8, 1), (8, 2), (8, 3)] {
                let circuit = TraceCircuit::theorem_4_5(&config, n, d, 5).unwrap();
                let report = circuit.paper_bound().certify(circuit.compiled());
                assert!(report.is_valid(), "n={n} d={d}: {report}");
            }
            let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 3);
            let circuit = TraceCircuit::theorem_4_4(&config, 8, 5).unwrap();
            let report = circuit.paper_bound().certify(circuit.compiled());
            assert!(report.is_valid(), "theorem 4.4: {report}");
        }
    }

    #[test]
    fn matmul_bounds_certify_across_schedules_and_recipes() {
        for alg in [BilinearAlgorithm::strassen(), BilinearAlgorithm::winograd()] {
            let config = CircuitConfig::new(alg, 2);
            for (n, d) in [(4usize, 1u32), (4, 2), (8, 2)] {
                let circuit = MatmulCircuit::theorem_4_9(&config, n, d).unwrap();
                let report = circuit.paper_bound().certify(circuit.compiled());
                assert!(report.is_valid(), "n={n} d={d}: {report}");
            }
        }
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        let circuit = MatmulCircuit::theorem_4_1(&config, 4, 2).unwrap();
        assert!(circuit.paper_bound().certify(circuit.compiled()).is_valid());
        let circuit = MatmulCircuit::theorem_4_8(&config, 4).unwrap();
        assert!(circuit.paper_bound().certify(circuit.compiled()).is_valid());
    }

    #[test]
    fn gate_bounds_are_not_vacuously_loose() {
        // The AtMost gate bounds must be within a moderate constant factor of
        // the built circuits — otherwise certification proves nothing.
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        let trace = TraceCircuit::theorem_4_5(&config, 8, 2, 5).unwrap();
        let bound = trace.paper_bound().gates.value();
        let measured = trace.compiled().num_gates() as u128;
        assert!(bound <= measured * 12, "trace bound {bound} vs {measured}");
        let mm = MatmulCircuit::theorem_4_9(&config, 8, 2).unwrap();
        let bound = mm.paper_bound().gates.value();
        let measured = mm.compiled().num_gates() as u128;
        assert!(bound <= measured * 12, "matmul bound {bound} vs {measured}");
    }

    #[test]
    fn violated_bounds_are_reported() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 2);
        let circuit = TraceCircuit::theorem_4_5(&config, 4, 1, 5).unwrap();
        let mut bound = circuit.paper_bound().clone();
        bound.depth = Bound::Exact(bound.depth.value() + 1);
        bound.gates = Bound::AtMost(1);
        let report = bound.certify(circuit.compiled());
        assert!(!report.is_valid());
        assert!(report.has(tc_circuit::FindingKind::DepthBound));
        assert!(report.has(tc_circuit::FindingKind::GateBound));
    }
}
