//! The naive baseline circuits from the paper's introduction.
//!
//! * [`NaiveTriangleCircuit`] — the depth-2 circuit with `C(N,3) + 1` gates deciding
//!   whether a graph has at least `τ` triangles (one gate per vertex triple plus one
//!   output gate).  This is the baseline the subcubic constructions are measured
//!   against.
//! * [`NaiveTraceCircuit`] — the same idea for weighted symmetric matrices: one depth-1
//!   product block per vertex triple (Lemma 3.3) and one output gate.
//! * [`NaiveMatmulCircuit`] — the definition-based matrix-product circuit: `N³` scalar
//!   products (Lemma 3.3) followed by one depth-2 summation per entry of `C`
//!   (`Θ(N³)` gates, depth 3).

use crate::matrix_input::MatrixInput;
use crate::trace::check_symmetric_zero_diagonal;
use crate::{CircuitConfig, CoreError, Result};
use fast_matmul::Matrix;
use tc_arith::{
    product3_signed_repr, product_signed_repr, repr_to_signed, threshold_of_repr, InputAllocator,
    Repr, SignedInt,
};
use tc_circuit::{Circuit, CircuitBuilder, CircuitStats, CompiledCircuit, PaperBound, Wire};

/// The depth-2, `C(N,3) + 1`-gate triangle-threshold circuit from Section 1.
///
/// Inputs are the `N(N−1)/2` edge indicator bits `x_ij` (`i < j`).  The first layer has
/// a gate `g_ijk` per vertex triple firing iff all three edges are present; the output
/// gate fires iff at least `τ` triple gates fire.
#[derive(Debug)]
pub struct NaiveTriangleCircuit {
    circuit: Circuit,
    compiled: CompiledCircuit,
    n: usize,
    tau: i64,
}

impl NaiveTriangleCircuit {
    /// Builds the circuit for `n`-vertex graphs and triangle threshold `tau`.
    pub fn new(n: usize, tau: i64) -> Result<Self> {
        let num_edges = n * (n - 1) / 2;
        let mut builder = CircuitBuilder::new(num_edges);
        let edge = |i: usize, j: usize| {
            debug_assert!(i < j);
            // Index of pair (i, j) in lexicographic order over i < j.
            Wire::input(i * n - i * (i + 1) / 2 + (j - i - 1))
        };
        let mut triple_gates = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    let g =
                        builder.add_gate([(edge(i, j), 1), (edge(i, k), 1), (edge(j, k), 1)], 3)?;
                    triple_gates.push(g);
                }
            }
        }
        let out = if triple_gates.is_empty() {
            // Graphs with fewer than 3 vertices have no triangles; the answer is the
            // constant [0 >= tau].
            builder.add_gate([(Wire::One, 0)], tau)?
        } else {
            builder.add_gate(triple_gates.into_iter().map(|g| (g, 1)), tau)?
        };
        builder.mark_output(out);
        let circuit = builder.build();
        let compiled = circuit.compile()?;
        Ok(NaiveTriangleCircuit {
            circuit,
            compiled,
            n,
            tau,
        })
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The triangle threshold `τ`.
    pub fn tau(&self) -> i64 {
        self.tau
    }

    /// The closed-form paper bound this instance must satisfy
    /// (see [`crate::bounds::naive_triangle_paper_bound`]).
    pub fn paper_bound(&self) -> PaperBound {
        crate::bounds::naive_triangle_paper_bound(self.n)
    }

    /// Complexity statistics, read from the stored compiled form.
    pub fn stats(&self) -> CircuitStats {
        self.compiled.stats()
    }

    /// Evaluates the circuit on a graph given by its adjacency matrix.
    pub fn evaluate(&self, adjacency: &Matrix) -> Result<bool> {
        let bits = self.encode(adjacency)?;
        let ev = self.compiled.evaluate(&bits)?;
        Ok(ev.outputs()[0])
    }

    /// Answers the triangle-threshold query for many graphs through the
    /// compiled engine's padded-tail batch path ([`CompiledCircuit::evaluate_many`]).
    pub fn evaluate_many(&self, adjacencies: &[Matrix]) -> Result<Vec<bool>> {
        let mut rows = Vec::with_capacity(adjacencies.len());
        for a in adjacencies {
            rows.push(self.encode(a)?);
        }
        let many = self.compiled.evaluate_many(&rows)?;
        (0..rows.len())
            .map(|i| many.output(i, 0).map_err(CoreError::from))
            .collect()
    }

    /// The compiled CSR form shared by every evaluation entry point.
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    fn encode(&self, adjacency: &Matrix) -> Result<Vec<bool>> {
        check_symmetric_zero_diagonal(adjacency)?;
        if adjacency.rows() != self.n {
            return Err(CoreError::InputMismatch {
                reason: "adjacency matrix size does not match the circuit",
            });
        }
        let mut bits = Vec::with_capacity(self.n * (self.n - 1) / 2);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let v = adjacency.get(i, j);
                if v != 0 && v != 1 {
                    return Err(CoreError::InputMismatch {
                        reason: "the triangle circuit needs a 0/1 adjacency matrix",
                    });
                }
                bits.push(v == 1);
            }
        }
        Ok(bits)
    }
}

/// The naive depth-2 trace-threshold circuit for weighted symmetric matrices: one
/// Lemma 3.3 product block per vertex triple and one output gate comparing
/// `6·Σ_{i<j<k} A_ij·A_jk·A_ik` with `τ`.
#[derive(Debug)]
pub struct NaiveTraceCircuit {
    circuit: Circuit,
    compiled: CompiledCircuit,
    input: MatrixInput,
    tau: i64,
}

impl NaiveTraceCircuit {
    /// Builds the circuit for `n×n` symmetric zero-diagonal matrices with the entry
    /// width taken from `config`.
    pub fn new(config: &CircuitConfig, n: usize, tau: i64) -> Result<Self> {
        let mut alloc = InputAllocator::new();
        let input = MatrixInput::allocate(&mut alloc, n, config.entry_bits());
        let mut builder = CircuitBuilder::new(alloc.num_inputs());
        let mut total = Repr::zero();
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    let prod = product3_signed_repr(
                        &mut builder,
                        input.entry(i, j),
                        input.entry(j, k),
                        input.entry(i, k),
                    )?;
                    total.add(&prod.scale(6)?);
                }
            }
        }
        let out = threshold_of_repr(&mut builder, &total, tau)?;
        builder.mark_output(out);
        let circuit = builder.build();
        let compiled = circuit.compile()?;
        Ok(NaiveTraceCircuit {
            circuit,
            compiled,
            input,
            tau,
        })
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The threshold `τ`.
    pub fn tau(&self) -> i64 {
        self.tau
    }

    /// The closed-form paper bound this instance must satisfy
    /// (see [`crate::bounds::naive_trace_paper_bound`]).
    pub fn paper_bound(&self) -> PaperBound {
        crate::bounds::naive_trace_paper_bound(self.input.n(), self.input.bits())
    }

    /// Complexity statistics, read from the stored compiled form.
    pub fn stats(&self) -> CircuitStats {
        self.compiled.stats()
    }

    /// The compiled CSR form shared by every evaluation entry point.
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    /// Evaluates the circuit: `trace(A³) ≥ τ`?
    pub fn evaluate(&self, a: &Matrix) -> Result<bool> {
        let bits = self.encode(a)?;
        let ev = self.compiled.evaluate(&bits)?;
        Ok(ev.outputs()[0])
    }

    /// Answers the trace-threshold query for many matrices through the
    /// compiled engine's padded-tail batch path ([`CompiledCircuit::evaluate_many`]).
    pub fn evaluate_many(&self, matrices: &[Matrix]) -> Result<Vec<bool>> {
        let mut rows = Vec::with_capacity(matrices.len());
        for a in matrices {
            rows.push(self.encode(a)?);
        }
        let many = self.compiled.evaluate_many(&rows)?;
        (0..rows.len())
            .map(|i| many.output(i, 0).map_err(CoreError::from))
            .collect()
    }

    fn encode(&self, a: &Matrix) -> Result<Vec<bool>> {
        check_symmetric_zero_diagonal(a)?;
        let mut bits = vec![false; self.compiled.num_inputs()];
        self.input.assign(a, &mut bits)?;
        Ok(bits)
    }
}

/// The naive (definition-based) matrix-product circuit: products `A_ik·B_kj` in depth 1,
/// then a depth-2 summation per entry of `C`.  Depth 3, `Θ(N³·b²)` gates.
#[derive(Debug)]
pub struct NaiveMatmulCircuit {
    circuit: Circuit,
    compiled: CompiledCircuit,
    a: MatrixInput,
    b: MatrixInput,
    output: Vec<SignedInt>,
    n: usize,
}

impl NaiveMatmulCircuit {
    /// Builds the circuit for `n×n` matrices with the entry width taken from `config`.
    pub fn new(config: &CircuitConfig, n: usize) -> Result<Self> {
        let mut alloc = InputAllocator::new();
        let a = MatrixInput::allocate(&mut alloc, n, config.entry_bits());
        let b = MatrixInput::allocate(&mut alloc, n, config.entry_bits());
        let mut builder = CircuitBuilder::new(alloc.num_inputs());
        let mut output = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let mut entry = Repr::zero();
                for k in 0..n {
                    let prod = product_signed_repr(&mut builder, a.entry(i, k), b.entry(k, j))?;
                    entry.add(&prod);
                }
                let value = repr_to_signed(&mut builder, &entry)?;
                value.mark_as_outputs(&mut builder);
                output.push(value);
            }
        }
        let circuit = builder.build();
        let compiled = circuit.compile()?;
        Ok(NaiveMatmulCircuit {
            circuit,
            compiled,
            a,
            b,
            output,
            n,
        })
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The closed-form paper bound this instance must satisfy
    /// (see [`crate::bounds::naive_matmul_paper_bound`]).
    pub fn paper_bound(&self) -> PaperBound {
        crate::bounds::naive_matmul_paper_bound(self.n, self.a.bits())
    }

    /// Complexity statistics, read from the stored compiled form.
    pub fn stats(&self) -> CircuitStats {
        self.compiled.stats()
    }

    /// The compiled CSR form shared by every evaluation entry point.
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    /// Evaluates the circuit on two host matrices and decodes `C = A·B`.
    pub fn evaluate(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        let mut bits = vec![false; self.compiled.num_inputs()];
        self.a.assign(a, &mut bits)?;
        self.b.assign(b, &mut bits)?;
        let ev = self.compiled.evaluate(&bits)?;
        Ok(Matrix::from_fn(self.n, self.n, |i, j| {
            self.output[i * self.n + j].value(&bits, &ev)
        }))
    }
}

/// The number of gates of the naive triangle circuit: `C(N,3) + 1`.
pub fn naive_triangle_gate_count(n: u64) -> u64 {
    if n < 3 {
        return 1;
    }
    n * (n - 1) * (n - 2) / 6 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_of_cube;
    use fast_matmul::{random_binary_matrix, random_matrix, BilinearAlgorithm};

    fn adjacency(n: usize, density: f64, seed: u64) -> Matrix {
        let raw = random_binary_matrix(n, density, seed);
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let v = raw.get(i, j);
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        m
    }

    fn triangle_count(a: &Matrix) -> i128 {
        trace_of_cube(a) / 6
    }

    #[test]
    fn gate_count_is_n_choose_3_plus_1() {
        for n in [3usize, 4, 8, 16] {
            let c = NaiveTriangleCircuit::new(n, 1).unwrap();
            assert_eq!(
                c.circuit().num_gates() as u64,
                naive_triangle_gate_count(n as u64),
                "n={n}"
            );
            assert_eq!(c.circuit().depth(), 2);
        }
        assert_eq!(naive_triangle_gate_count(16), 560 + 1);
    }

    #[test]
    fn triangle_threshold_answers_match_exact_counts() {
        for n in [4usize, 8] {
            for seed in 0..4u64 {
                let a = adjacency(n, 0.5, seed + 1);
                let triangles = triangle_count(&a);
                for tau in [0i64, 1, triangles as i64, triangles as i64 + 1, 10] {
                    let c = NaiveTriangleCircuit::new(n, tau).unwrap();
                    assert_eq!(
                        c.evaluate(&a).unwrap(),
                        triangles >= tau as i128,
                        "n={n} seed={seed} tau={tau} triangles={triangles}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_graphs_have_no_triangles() {
        let c = NaiveTriangleCircuit::new(2, 1).unwrap();
        assert!(!c.evaluate(&Matrix::zeros(2, 2)).unwrap());
        let c = NaiveTriangleCircuit::new(2, 0).unwrap();
        assert!(c.evaluate(&Matrix::zeros(2, 2)).unwrap());
    }

    #[test]
    fn non_binary_matrices_are_rejected_by_the_triangle_circuit() {
        let c = NaiveTriangleCircuit::new(4, 1).unwrap();
        let mut weighted = Matrix::zeros(4, 4);
        weighted.set(0, 1, 2);
        weighted.set(1, 0, 2);
        assert!(c.evaluate(&weighted).is_err());
    }

    #[test]
    fn naive_trace_circuit_handles_weighted_graphs() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 3);
        let mut a = Matrix::zeros(6, 6);
        let mut state = 123u64;
        for i in 0..6 {
            for j in (i + 1)..6 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = (state >> 33) as i64 % 8 - 4;
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        let t = trace_of_cube(&a);
        for delta in [-5i128, 0, 5] {
            let tau = (t + delta) as i64;
            let c = NaiveTraceCircuit::new(&config, 6, tau).unwrap();
            assert_eq!(c.circuit().depth(), 2);
            assert_eq!(c.evaluate(&a).unwrap(), t >= tau as i128, "tau={tau}");
        }
    }

    #[test]
    fn naive_matmul_circuit_is_exact() {
        let config = CircuitConfig::new(BilinearAlgorithm::strassen(), 3);
        for n in [2usize, 3, 4] {
            let mm = NaiveMatmulCircuit::new(&config, n).unwrap();
            assert_eq!(mm.circuit().depth(), 3);
            for seed in 0..3u64 {
                let a = random_matrix(n, 7, seed + 50);
                let b = random_matrix(n, 7, seed + 60);
                assert_eq!(mm.evaluate(&a, &b).unwrap(), a.multiply_naive(&b).unwrap());
            }
        }
    }
}
