//! The `verify-circuit` sweep (`cargo run -p tcmm-xtask -- verify-circuit`).
//!
//! Builds every constructor geometry the repository ships — the naive
//! baselines, the trace and matmul circuits of Theorems 4.1/4.4/4.5/4.8/4.9,
//! the triangle oracle, and the circuit the convnet's threshold backend
//! plans for an im2col product — then, for each:
//!
//! 1. runs the independent checker ([`tc_circuit::verify_against`]):
//!    structural CSR invariants plus the canonicalization translation
//!    validation;
//! 2. certifies the constructor's closed-form paper bound
//!    ([`tc_circuit::PaperBound::certify`]) against the compiled artifact.
//!
//! The per-constructor bound table goes to stdout (and, with
//! `--output <path>`, to a file the CI job archives); any error-severity
//! finding makes the process exit non-zero.

use std::path::Path;
use std::process::ExitCode;

use fast_matmul::BilinearAlgorithm;
use tc_circuit::{verify_against, Circuit, CompiledCircuit, PaperBound, Severity, VerifyReport};
use tc_convnet::{ConvLayerSpec, MatmulBackend};
use tc_graph::TriangleOracle;
use tcmm_core::matmul::MatmulCircuit;
use tcmm_core::naive::{NaiveMatmulCircuit, NaiveTraceCircuit, NaiveTriangleCircuit};
use tcmm_core::trace::TraceCircuit;
use tcmm_core::CircuitConfig;

/// One certified sweep entry: the constructor's bound next to what the
/// compiled artifact actually measures, plus the full verifier report.
struct Row {
    bound: PaperBound,
    depth: u32,
    gates: usize,
    edges: usize,
    report: VerifyReport,
}

impl Row {
    fn ok(&self) -> bool {
        self.report.is_valid()
    }

    fn status(&self) -> String {
        let advice = self
            .report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Advice)
            .count();
        match (self.report.error_count(), advice) {
            (0, 0) => "ok".to_string(),
            (0, a) => format!("ok ({a} advice)"),
            (e, _) => format!("{e} error(s)"),
        }
    }
}

/// Runs the full checker + bound certification for one compiled geometry.
fn check(circuit: &Circuit, compiled: &CompiledCircuit, bound: PaperBound) -> Row {
    let mut report = verify_against(circuit, compiled);
    report.merge(bound.certify(compiled));
    Row {
        bound,
        depth: compiled.depth(),
        gates: compiled.num_gates(),
        edges: compiled.num_edges(),
        report,
    }
}

/// Builds every sweep geometry. Kept deliberately exhaustive over the
/// constructor surface rather than large in `n`: each entry must exercise a
/// distinct theorem/recipe/schedule path, and the bounds are closed-form in
/// the geometry, so small instances certify the same formulas CI can afford
/// to re-check on every push.
fn build_rows() -> Result<Vec<Row>, String> {
    let strassen = BilinearAlgorithm::strassen();
    let winograd = BilinearAlgorithm::winograd();
    let binary = CircuitConfig::binary(strassen.clone());
    let two_bit = CircuitConfig::new(strassen.clone(), 2);
    let wino_two_bit = CircuitConfig::new(winograd, 2);
    let err = |name: &str, e: &dyn std::fmt::Display| format!("building {name}: {e}");

    let mut rows = Vec::new();

    let c = NaiveTriangleCircuit::new(6, 2).map_err(|e| err("NaiveTriangle n=6", &e))?;
    rows.push(check(c.circuit(), c.compiled(), c.paper_bound()));

    let c = NaiveTraceCircuit::new(&binary, 4, 6).map_err(|e| err("NaiveTrace n=4", &e))?;
    rows.push(check(c.circuit(), c.compiled(), c.paper_bound()));

    let c = NaiveMatmulCircuit::new(&two_bit, 3).map_err(|e| err("NaiveMatmul n=3", &e))?;
    rows.push(check(c.circuit(), c.compiled(), c.paper_bound()));

    let trace_geometries = [
        (
            "TraceCircuit 4.4 n=4",
            TraceCircuit::theorem_4_4(&binary, 4, 6),
        ),
        (
            "TraceCircuit 4.5 n=8 d=2",
            TraceCircuit::theorem_4_5(&binary, 8, 2, 6),
        ),
        (
            "TraceCircuit 4.5 winograd n=4 d=1",
            TraceCircuit::theorem_4_5(&wino_two_bit, 4, 1, 6),
        ),
    ];
    for (name, built) in trace_geometries {
        let c = built.map_err(|e| err(name, &e))?;
        rows.push(check(c.circuit(), c.compiled(), c.paper_bound().clone()));
    }

    let matmul_geometries = [
        (
            "MatmulCircuit 4.8 n=4",
            MatmulCircuit::theorem_4_8(&binary, 4),
        ),
        (
            "MatmulCircuit 4.9 n=4 d=1 b=2",
            MatmulCircuit::theorem_4_9(&two_bit, 4, 1),
        ),
        (
            "MatmulCircuit 4.9 n=8 d=2",
            MatmulCircuit::theorem_4_9(&binary, 8, 2),
        ),
        (
            "MatmulCircuit 4.1 n=4 d=2",
            MatmulCircuit::theorem_4_1(&binary, 4, 2),
        ),
    ];
    for (name, built) in matmul_geometries {
        let c = built.map_err(|e| err(name, &e))?;
        rows.push(check(c.circuit(), c.compiled(), c.paper_bound().clone()));
    }

    let oracle =
        TriangleOracle::new(&binary, 6, 2, 3).map_err(|e| err("TriangleOracle v=6 d=2", &e))?;
    let trace = oracle.circuit();
    rows.push(check(
        trace.circuit(),
        trace.compiled(),
        oracle.paper_bound().clone(),
    ));

    // The circuit the convnet's threshold backend would build for a
    // 3×3 one-channel image under 2×2 kernels: im2col shape (4, 4, 2),
    // padded to the recipe's power.
    let spec = ConvLayerSpec {
        image_size: 3,
        channels: 1,
        kernel_size: 2,
        num_kernels: 2,
        stride: 1,
    };
    let backend = MatmulBackend::ThresholdCircuit {
        algorithm: strassen,
        depth_parameter: 1,
    };
    let (p, q, k) = spec.matmul_shape();
    let planned = backend
        .plan_circuit(p.max(q).max(k), 2)
        .expect("the threshold backend always plans a circuit")
        .map_err(|e| err("convnet im2col (4,4,2)", &e))?;
    rows.push(check(
        planned.circuit(),
        planned.compiled(),
        planned.paper_bound().clone(),
    ));

    Ok(rows)
}

/// Renders the bound table: measured values side by side with the
/// closed-form bounds they must satisfy.
fn render_table(rows: &[Row]) -> String {
    let mut cells: Vec<[String; 7]> = vec![[
        "constructor".into(),
        "theorem".into(),
        "geometry".into(),
        "depth".into(),
        "gates".into(),
        "edges".into(),
        "status".into(),
    ]];
    for row in rows {
        let edges = match row.bound.edges {
            Some(b) => format!("{} ({b})", row.edges),
            None => format!("{} (unbounded)", row.edges),
        };
        cells.push([
            row.bound.constructor.to_string(),
            row.bound.theorem.to_string(),
            row.bound.geometry.clone(),
            format!("{} ({})", row.depth, row.bound.depth),
            format!("{} ({})", row.gates, row.bound.gates),
            edges,
            row.status(),
        ]);
    }
    let mut widths = [0usize; 7];
    for row in &cells {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &cells {
        let line: Vec<String> = row
            .iter()
            .zip(widths)
            .map(|(cell, w)| format!("{cell:<w$}"))
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
    }
    out
}

/// Entry point for the `verify-circuit` subcommand.
pub fn run(output: Option<&Path>) -> ExitCode {
    let rows = match build_rows() {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("verify-circuit: {e}");
            return ExitCode::FAILURE;
        }
    };
    let table = render_table(&rows);
    print!("{table}");
    if let Some(path) = output {
        if let Err(e) = std::fs::write(path, &table) {
            eprintln!("verify-circuit: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let failed: Vec<&Row> = rows.iter().filter(|r| !r.ok()).collect();
    for row in &failed {
        eprintln!(
            "\n{} ({}, {}) failed verification:\n{}",
            row.bound.constructor, row.bound.theorem, row.bound.geometry, row.report
        );
    }
    if failed.is_empty() {
        eprintln!(
            "verify-circuit: {} geometries certified (structural + translation + paper bounds)",
            rows.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nverify-circuit: {} of {} geometries failed",
            failed.len(),
            rows.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sweep_geometry_certifies() {
        let rows = build_rows().expect("all sweep geometries build");
        assert!(rows.len() >= 12, "sweep covers every constructor surface");
        for row in &rows {
            assert!(
                row.ok(),
                "{} ({}) failed:\n{}",
                row.bound.constructor,
                row.bound.geometry,
                row.report
            );
        }
        let table = render_table(&rows);
        assert!(table.contains("constructor"));
        assert!(table.lines().count() == rows.len() + 1);
    }
}
