//! Repository invariant linter (`cargo run -p tcmm-xtask -- lint`).
//!
//! A hand-rolled source scanner — no proc-macro or syn dependency, per the
//! workspace's vendored-stub policy — enforcing four invariants the
//! compiler cannot:
//!
//! 1. **safety_comment** — every `unsafe` block, function, or impl carries
//!    a `// SAFETY:` comment on the same line or in the comment block
//!    immediately above it, stating the invariant that makes it sound.
//! 2. **hot_path** — regions bracketed by `// lint:hot-path-begin` /
//!    `// lint:hot-path-end` markers must not call timing or allocating
//!    constructors (`Instant::now`, `Box::new`, `format!`, `.collect(`,
//!    …): these are the per-request serve paths whose zero-allocation
//!    budget the `alloc_steady_state` suite pins.
//! 3. **no_panic** — non-test code under `crates/runtime/src` must not
//!    call `.unwrap()` / `.expect(` / `panic!(` / `todo!(` /
//!    `unimplemented!(`; fallible paths return the crate's typed
//!    `RuntimeError` instead. (`debug_assert!` stays legal: it documents
//!    invariants without a release-build abort path.)
//! 4. **telemetry_families** — every `tcmm_` metric family emitted by
//!    `telemetry.rs` must be listed in the `telemetry_export` test's
//!    `REQUIRED_FAMILIES` gate *and* documented in the README, so a new
//!    metric cannot ship unvalidated or undocumented.
//! 5. **narrowing-cast** — the circuit lowering and kernel files
//!    (`crates/circuit/src/{compiled,kernel,canon,arena}.rs`) must not use
//!    bare `as` casts to sized integer types (`u8`…`u64`, `i8`…`i64`):
//!    these silently truncate or wrap, and a wrong slot id or plane count
//!    corrupts the CSR arrays the evaluators trust. Casts to
//!    `usize`/`u128`/`i128` are exempt (never narrowing on supported
//!    targets); every remaining cast carries a waiver stating why it is
//!    lossless.
//!
//! Any rule can be waived at a specific site with
//! `// lint:allow(<rule>): <reason>` on the same line or in the comment
//! block immediately above; the reason is mandatory. Fixture files under
//! `fixtures/` seed one violation per rule so the test suite proves each
//! rule actually fires.
//!
//! The binary also hosts `cargo run -p tcmm-xtask -- verify-circuit` (see
//! [`verify_circuit`]): the sweep that builds every constructor geometry,
//! runs the `tc_circuit::verify` checker on each, and prints the
//! paper-bound table.

mod verify_circuit;

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint violation, formatted `path:line: [rule] message`.
struct Finding {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A source line split into its syntactic channels by [`split_source`].
#[derive(Default)]
struct Line {
    /// Code with comments removed and string/char literal *contents*
    /// blanked (the delimiting quotes remain, so `.unwrap()` inside a
    /// string can never trip a rule).
    code: String,
    /// Concatenated comment text on the line (line and block comments).
    comment: String,
    /// Concatenated contents of string literals on the line.
    strings: String,
}

/// Lexer state carried across lines.
enum Mode {
    Normal,
    /// Inside `/* … */`; Rust block comments nest, hence the depth.
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a `r##"…"##` raw string with this many `#`s.
    RawStr(u32),
}

/// Splits source into per-line code/comment/string channels. This is a
/// line-preserving scanner, not a full lexer: it understands line and
/// nested block comments, plain and raw strings, escapes, char literals,
/// and the lifetime-vs-char-literal ambiguity — enough that token searches
/// over `.code` and `.comment` are reliable.
fn split_source(src: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut mode = Mode::Normal;
    for raw in src.lines() {
        let mut line = Line::default();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Normal => match c {
                    '/' if next == Some('/') => {
                        // Line comment: the rest of the line is comment.
                        line.comment.extend(&chars[i + 2..]);
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        line.code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string r"…" / r#"…"#; count hashes.
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            line.code.push_str("r\"");
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                        } else {
                            line.code.push('r');
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Lifetime (`'a`) or char literal (`'a'`, `'\n'`)?
                        // A char literal closes with a quote one or two
                        // (escape) chars later; a lifetime does not.
                        if next == Some('\\') {
                            // Escaped char literal: skip to closing quote.
                            line.code.push('\'');
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                            line.code.push('\'');
                        } else if chars.get(i + 2) == Some(&'\'') {
                            line.code.push_str("' '");
                            i += 3;
                        } else {
                            line.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        line.code.push(c);
                        i += 1;
                    }
                },
                Mode::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        mode = if depth == 1 {
                            Mode::Normal
                        } else {
                            Mode::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => match c {
                    '\\' => {
                        line.strings.push(' ');
                        i += 2;
                    }
                    '"' => {
                        line.code.push('"');
                        mode = Mode::Normal;
                        i += 1;
                    }
                    _ => {
                        line.strings.push(c);
                        i += 1;
                    }
                },
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        let close = (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                        if close {
                            line.code.push('"');
                            mode = Mode::Normal;
                            i += 1 + hashes as usize;
                        } else {
                            line.strings.push('"');
                            i += 1;
                        }
                    } else {
                        line.strings.push(c);
                        i += 1;
                    }
                }
            }
        }
        lines.push(line);
    }
    lines
}

/// True when `needle` occurs in `hay` bounded by non-identifier chars.
fn has_word(hay: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(at) = hay[start..].find(needle) {
        let at = start + at;
        let before_ok = hay[..at].chars().next_back().is_none_or(|c| !is_ident(c));
        let after_ok = hay[at + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Is the waiver `lint:allow(<rule>)` in force for line `at`? Looks at the
/// line itself plus the contiguous run of comment-only lines above it.
/// Returns `Err(line)` when a matching directive exists but omits the
/// mandatory `: reason` suffix.
fn allowed(lines: &[Line], at: usize, rule: &str) -> Result<bool, usize> {
    let directive = format!("lint:allow({rule})");
    let check = |idx: usize| -> Option<Result<bool, usize>> {
        let c = &lines[idx].comment;
        let pos = c.find(&directive)?;
        let rest = c[pos + directive.len()..].trim_start();
        let reason_ok = rest.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        Some(if reason_ok { Ok(true) } else { Err(idx + 1) })
    };
    if let Some(r) = check(at) {
        return r;
    }
    let mut i = at;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let comment_only = !l.comment.is_empty() && l.code.trim().is_empty();
        if !comment_only {
            break;
        }
        if let Some(r) = check(i) {
            return r;
        }
    }
    Ok(false)
}

/// Rule 1: every `unsafe` token in code is covered by a `SAFETY:` comment
/// on the same line or in the comment/attribute block immediately above.
fn check_safety(path: &Path, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        // `unsafe` inside a doc example or string is already filtered by
        // the channel split; this is a genuine code token.
        let mut covered = line.comment.contains("SAFETY:");
        let mut i = idx;
        while !covered && i > 0 {
            i -= 1;
            let l = &lines[i];
            let comment_only = !l.comment.is_empty() && l.code.trim().is_empty();
            let attr_only = l.code.trim().starts_with("#[");
            let blank = l.code.trim().is_empty() && l.comment.is_empty();
            if !(comment_only || attr_only || blank) {
                break;
            }
            covered = l.comment.contains("SAFETY:");
        }
        if covered {
            continue;
        }
        match allowed(lines, idx, "safety_comment") {
            Ok(true) => {}
            Ok(false) => findings.push(Finding {
                path: path.to_path_buf(),
                line: idx + 1,
                rule: "safety_comment",
                message: "`unsafe` without a `// SAFETY:` comment stating why \
                          the invariants hold"
                    .to_string(),
            }),
            Err(line) => findings.push(missing_reason(path, line)),
        }
    }
    findings
}

/// Calls banned inside `lint:hot-path` regions: anything that reads a
/// clock or allocates. `.collect(` covers every collecting adaptor.
const HOT_PATH_BANNED: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "Box::new",
    "vec!",
    "Vec::new",
    "Vec::with_capacity",
    "String::new",
    "String::from",
    "format!",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    ".collect(",
];

/// Rule 2: no clock reads or allocations between `lint:hot-path-begin`
/// and `lint:hot-path-end` markers.
fn check_hot_path(path: &Path, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut region_start: Option<usize> = None;
    for (idx, line) in lines.iter().enumerate() {
        if line.comment.contains("lint:hot-path-begin") {
            if let Some(start) = region_start {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    rule: "hot_path",
                    message: format!(
                        "nested hot-path-begin (region already open since \
                         line {})",
                        start + 1
                    ),
                });
            }
            region_start = Some(idx);
            continue;
        }
        if line.comment.contains("lint:hot-path-end") {
            if region_start.take().is_none() {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    rule: "hot_path",
                    message: "hot-path-end without a matching begin".to_string(),
                });
            }
            continue;
        }
        if region_start.is_none() {
            continue;
        }
        for banned in HOT_PATH_BANNED {
            if !line.code.contains(banned) {
                continue;
            }
            match allowed(lines, idx, "hot_path") {
                Ok(true) => {}
                Ok(false) => findings.push(Finding {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    rule: "hot_path",
                    message: format!(
                        "`{banned}` inside a hot-path region (allocates or \
                         reads a clock on the per-request path)"
                    ),
                }),
                Err(line) => findings.push(missing_reason(path, line)),
            }
        }
    }
    if let Some(start) = region_start {
        findings.push(Finding {
            path: path.to_path_buf(),
            line: start + 1,
            rule: "hot_path",
            message: "hot-path region never closed (missing lint:hot-path-end)".to_string(),
        });
    }
    findings
}

/// Panicking calls banned in non-test runtime code.
const NO_PANIC_BANNED: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
];

/// Rule 3: non-test code in `crates/runtime/src` must not panic; fallible
/// paths return the typed `RuntimeError`. `#[cfg(test)]` items are
/// skipped by brace counting.
fn check_no_panic(path: &Path, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Depth counter for an open #[cfg(test)] item; None = not skipping,
    // Some(0) = attribute seen, body brace not yet reached.
    let mut skip: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        if skip.is_none() && line.code.contains("#[cfg(test)]") {
            skip = Some(0);
        }
        if let Some(depth) = skip.as_mut() {
            let opens = line.code.matches('{').count() as i64;
            let closes = line.code.matches('}').count() as i64;
            let had_body = *depth > 0 || opens > 0;
            *depth += opens - closes;
            if had_body && *depth <= 0 {
                skip = None;
            }
            continue;
        }
        for banned in NO_PANIC_BANNED {
            // `panic!(` must not match `debug_assert_panic!(`-style names:
            // require a non-identifier char before macro needles.
            let hit = if banned.starts_with('.') {
                line.code.contains(banned)
            } else {
                let stem = &banned[..banned.len() - 2]; // drop `!(`
                has_word(&line.code, stem) && line.code.contains(banned)
            };
            if !hit {
                continue;
            }
            match allowed(lines, idx, "no_panic") {
                Ok(true) => {}
                Ok(false) => findings.push(Finding {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    rule: "no_panic",
                    message: format!(
                        "`{banned}` in non-test runtime code; return a typed \
                         RuntimeError or add lint:allow(no_panic) with the \
                         invariant that rules the panic out"
                    ),
                }),
                Err(line) => findings.push(missing_reason(path, line)),
            }
        }
    }
    findings
}

/// Cast targets the narrowing-cast rule bans: every sized integer type a
/// bare `as` can truncate or wrap into. `usize`, `u128` and `i128` are
/// exempt — on the workspace's supported targets a cast into them never
/// loses bits (and `i128` is the verifier's exact-arithmetic type).
const NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64"];

/// Files the narrowing-cast rule is scoped to: the circuit lowering +
/// kernel quartet, where a truncated slot id or plane count silently
/// corrupts evaluation.
const NARROWING_SCOPE: &[&str] = &["compiled.rs", "kernel.rs", "canon.rs", "arena.rs"];

/// The banned cast targets appearing on one code line, in order.
fn cast_targets(code: &str) -> Vec<&'static str> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(at) = code[start..].find("as") {
        let at = start + at;
        start = at + 2;
        let before_ok = code[..at].chars().next_back().is_none_or(|c| !is_ident(c));
        let after = &code[at + 2..];
        if !before_ok || after.chars().next().is_none_or(is_ident) {
            continue;
        }
        let target: String = after
            .trim_start()
            .chars()
            .take_while(|&c| is_ident(c))
            .collect();
        if let Some(t) = NARROWING_TARGETS.iter().find(|&&t| t == target) {
            out.push(*t);
        }
    }
    out
}

/// Rule 5: no bare `as` casts to sized integer types in the scoped circuit
/// files; each surviving cast carries a `lint:allow(narrowing-cast)` waiver
/// whose reason states why the value fits. `#[cfg(test)]` items are skipped
/// by the same brace counting as the no-panic rule.
fn check_narrowing_cast(path: &Path, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut skip: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        if skip.is_none() && line.code.contains("#[cfg(test)]") {
            skip = Some(0);
        }
        if let Some(depth) = skip.as_mut() {
            let opens = line.code.matches('{').count() as i64;
            let closes = line.code.matches('}').count() as i64;
            let had_body = *depth > 0 || opens > 0;
            *depth += opens - closes;
            if had_body && *depth <= 0 {
                skip = None;
            }
            continue;
        }
        for target in cast_targets(&line.code) {
            match allowed(lines, idx, "narrowing-cast") {
                Ok(true) => {}
                Ok(false) => findings.push(Finding {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    rule: "narrowing-cast",
                    message: format!(
                        "bare `as {target}` can silently truncate or wrap; \
                         use a checked conversion or add \
                         lint:allow(narrowing-cast) stating why the value \
                         fits"
                    ),
                }),
                Err(line) => findings.push(missing_reason(path, line)),
            }
        }
    }
    findings
}

fn missing_reason(path: &Path, line: usize) -> Finding {
    Finding {
        path: path.to_path_buf(),
        line,
        rule: "lint_allow",
        message: "lint:allow without a `: reason` — waivers must say why".to_string(),
    }
}

/// Extracts the set of `tcmm_` metric family names from string literals,
/// folding histogram series suffixes (`_bucket`/`_sum`/`_count`) into
/// their base family when the base is also present.
fn extract_families(src: &str) -> Vec<String> {
    let lines = split_source(src);
    let mut raw: Vec<String> = Vec::new();
    for line in &lines {
        let s = &line.strings;
        let mut rest = s.as_str();
        while let Some(at) = rest.find("tcmm_") {
            let tail = &rest[at..];
            let end = tail
                .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
                .unwrap_or(tail.len());
            let name = &tail[..end];
            if name.len() > "tcmm_".len() && !raw.iter().any(|n| n == name) {
                raw.push(name.to_string());
            }
            rest = &rest[at + end.max(1)..];
        }
    }
    let bases: Vec<String> = raw.clone();
    let mut families: Vec<String> = raw
        .into_iter()
        .filter(|name| {
            !["_bucket", "_sum", "_count"].iter().any(|suffix| {
                name.strip_suffix(suffix)
                    .is_some_and(|base| bases.iter().any(|b| b == base))
            })
        })
        .collect();
    families.sort();
    families
}

/// Rule 4: every family `telemetry.rs` emits appears in the
/// `telemetry_export` test's `REQUIRED_FAMILIES` gate and in the README.
fn check_telemetry_families(
    telemetry_path: &Path,
    telemetry_src: &str,
    export_src: &str,
    readme_src: &str,
) -> Vec<Finding> {
    let emitted = extract_families(telemetry_src);
    let required = extract_families(export_src);
    let mut findings = Vec::new();
    for family in &emitted {
        if !required.iter().any(|f| f == family) {
            findings.push(Finding {
                path: telemetry_path.to_path_buf(),
                line: 1,
                rule: "telemetry_families",
                message: format!(
                    "family `{family}` is emitted but missing from \
                     REQUIRED_FAMILIES in tests/telemetry_export.rs"
                ),
            });
        }
        if !readme_src.contains(family.as_str()) {
            findings.push(Finding {
                path: telemetry_path.to_path_buf(),
                line: 1,
                rule: "telemetry_families",
                message: format!(
                    "family `{family}` is emitted but not documented in \
                     README.md"
                ),
            });
        }
    }
    findings
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`,
/// `vendor/`, and the linter's own deliberately-failing `fixtures/`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == "fixtures" {
                continue;
            }
            rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// Runs every rule over the workspace rooted at `root`.
fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    let runtime_src = root.join("crates").join("runtime").join("src");
    let circuit_src = root.join("crates").join("circuit").join("src");
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let lines = split_source(&src);
        findings.extend(check_safety(path, &lines));
        findings.extend(check_hot_path(path, &lines));
        if path.starts_with(&runtime_src) {
            findings.extend(check_no_panic(path, &lines));
        }
        let in_cast_scope = path.starts_with(&circuit_src)
            && path
                .file_name()
                .and_then(|f| f.to_str())
                .is_some_and(|f| NARROWING_SCOPE.contains(&f));
        if in_cast_scope {
            findings.extend(check_narrowing_cast(path, &lines));
        }
    }
    let telemetry_path = runtime_src.join("telemetry.rs");
    let export_path = root
        .join("crates")
        .join("runtime")
        .join("tests")
        .join("telemetry_export.rs");
    let readme_path = root.join("README.md");
    match (
        std::fs::read_to_string(&telemetry_path),
        std::fs::read_to_string(&export_path),
        std::fs::read_to_string(&readme_path),
    ) {
        (Ok(telemetry), Ok(export), Ok(readme)) => {
            findings.extend(check_telemetry_families(
                &telemetry_path,
                &telemetry,
                &export,
                &readme,
            ));
        }
        _ => findings.push(Finding {
            path: telemetry_path,
            line: 1,
            rule: "telemetry_families",
            message: "could not read telemetry.rs / telemetry_export.rs / \
                      README.md"
                .to_string(),
        }),
    }
    findings
}

fn usage() -> ExitCode {
    eprintln!("usage: xtask lint [--root <workspace-root>]");
    eprintln!("       xtask verify-circuit [--output <bound-table-path>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut output: Option<PathBuf> = None;
    let mut cmd = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "verify-circuit" if cmd.is_none() => cmd = Some("verify-circuit"),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = PathBuf::from(p),
                    None => return usage(),
                }
            }
            "--output" => {
                i += 1;
                match args.get(i) {
                    Some(p) => output = Some(PathBuf::from(p)),
                    None => return usage(),
                }
            }
            _ => return usage(),
        }
        i += 1;
    }
    match cmd {
        Some("lint") => {
            let findings = lint_workspace(&root);
            for finding in &findings {
                eprintln!("{finding}");
            }
            if findings.is_empty() {
                eprintln!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} violation(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("verify-circuit") => verify_circuit::run(output.as_deref()),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> (PathBuf, Vec<Line>) {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
        let lines = split_source(&src);
        (path, lines)
    }

    #[test]
    fn splitter_separates_channels() {
        let lines = split_source("let x = \"unsafe .unwrap()\"; // SAFETY: comment\nunsafe { x }");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].strings.contains("unsafe .unwrap()"));
        assert!(lines[0].comment.contains("SAFETY:"));
        assert!(has_word(&lines[1].code, "unsafe"));
    }

    #[test]
    fn splitter_handles_raw_strings_and_chars() {
        let lines = split_source(
            "let r = r#\"panic!(\"inner\")\"#;\nlet c = '\"'; let l: &'static str = \"x\";",
        );
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].strings.contains("panic!"));
        // The char literal's quote must not open a string.
        assert!(lines[1].strings.contains('x'));
        assert!(!lines[1].code.contains("panic"));
    }

    #[test]
    fn safety_rule_fires_on_fixture() {
        let (path, lines) = fixture("safety_missing.rs");
        let findings = check_safety(&path, &lines);
        assert_eq!(findings.len(), 1, "exactly the seeded violation");
        assert_eq!(findings[0].rule, "safety_comment");
    }

    #[test]
    fn safety_rule_accepts_commented_and_waived_sites() {
        let (path, lines) = fixture("safety_ok.rs");
        assert!(check_safety(&path, &lines).is_empty());
    }

    #[test]
    fn hot_path_rule_fires_on_fixture() {
        let (path, lines) = fixture("hot_path_bad.rs");
        let findings = check_hot_path(&path, &lines);
        assert_eq!(findings.len(), 2, "allocation + unclosed region");
        assert!(findings[0].message.contains("Vec::new"));
        assert!(findings[1].message.contains("never closed"));
    }

    #[test]
    fn hot_path_rule_accepts_clean_region() {
        let (path, lines) = fixture("hot_path_ok.rs");
        assert!(check_hot_path(&path, &lines).is_empty());
    }

    #[test]
    fn no_panic_rule_fires_on_fixture() {
        let (path, lines) = fixture("no_panic_bad.rs");
        let findings = check_no_panic(&path, &lines);
        assert_eq!(findings.len(), 2, "unwrap + expect outside tests");
        assert!(findings.iter().all(|f| f.rule == "no_panic"));
    }

    #[test]
    fn no_panic_rule_skips_tests_and_waivers() {
        let (path, lines) = fixture("no_panic_ok.rs");
        assert!(check_no_panic(&path, &lines).is_empty());
    }

    #[test]
    fn narrowing_cast_rule_fires_on_fixture() {
        let (path, lines) = fixture("narrowing_cast_bad.rs");
        let findings = check_narrowing_cast(&path, &lines);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings[0].message.contains("as u8"));
        assert!(findings[1].message.contains("as i32"));
        assert_eq!(findings[2].rule, "lint_allow", "waiver without a reason");
    }

    #[test]
    fn narrowing_cast_rule_accepts_waived_exempt_and_test_sites() {
        let (path, lines) = fixture("narrowing_cast_ok.rs");
        assert!(check_narrowing_cast(&path, &lines).is_empty());
    }

    #[test]
    fn cast_scanner_finds_word_bounded_targets_only() {
        assert_eq!(cast_targets("let x = y as u8; z as i64"), vec!["u8", "i64"]);
        // Exempt targets, identifiers containing `as`, and `as` inside a
        // larger ident must not match.
        assert!(cast_targets("let x = y as usize + w as u128 + v as i128").is_empty());
        assert!(cast_targets("basil as_u8 has_word(x)").is_empty());
    }

    #[test]
    fn lint_allow_requires_a_reason() {
        let src = "// lint:allow(no_panic)\nlet x = y.unwrap();\n";
        let lines = split_source(src);
        let findings = check_no_panic(Path::new("t.rs"), &lines);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lint_allow");
    }

    #[test]
    fn telemetry_families_cross_check() {
        let telemetry = r#"
            out.push("tcmm_requests_total");
            out.push("tcmm_latency_seconds");
            out.push("tcmm_latency_seconds_bucket");
        "#;
        let export = r#"const REQUIRED_FAMILIES: &[&str] = &["tcmm_requests_total"];"#;
        let readme = "Only `tcmm_requests_total` is documented.";
        let findings =
            check_telemetry_families(Path::new("telemetry.rs"), telemetry, export, readme);
        // tcmm_latency_seconds missing from both gates; the _bucket series
        // folds into its base family rather than reporting separately.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .all(|f| f.message.contains("tcmm_latency_seconds")));
    }

    impl fmt::Debug for Finding {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{self}")
        }
    }

    #[test]
    fn whole_workspace_is_clean() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .expect("xtask lives two levels below the workspace root");
        let findings = lint_workspace(&root);
        assert!(
            findings.is_empty(),
            "workspace must lint clean:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
