//! Clean fixture: the hot-path region only reuses preallocated storage;
//! one clock read is explicitly waived; allocation outside the region is
//! unrestricted.

fn serve(scratch: &mut [u64]) -> u64 {
    // lint:hot-path-begin
    let mut acc = 0u64;
    for s in scratch.iter_mut() {
        *s = s.wrapping_mul(3);
        acc = acc.wrapping_add(*s);
    }
    // lint:allow(hot_path): fixture exercising the waiver path — a strided
    // clock read is part of this region's contract.
    let _t = std::time::Instant::now();
    // lint:hot-path-end
    acc
}

fn main() {
    let mut scratch = vec![1, 2, 3];
    serve(&mut scratch);
}
