//! Seeded violations: `.unwrap()` and `.expect(` in non-test code.

fn main() {
    let v = vec![1, 2, 3];
    let first = v.first().unwrap();
    let last = v.last().expect("non-empty");
    println!("{first} {last}");
}
