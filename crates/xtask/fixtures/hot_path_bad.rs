//! Seeded violations: an allocation inside a hot-path region, and a
//! region that is never closed.

fn serve() -> usize {
    // lint:hot-path-begin
    let scratch: Vec<u64> = Vec::new();
    scratch.len()
}

fn main() {
    serve();
}
