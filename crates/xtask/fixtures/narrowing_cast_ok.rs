//! Clean narrowing-cast sites: properly waived casts, exempt wide targets,
//! and casts inside `#[cfg(test)]` items.

fn waived_above(x: u64) -> u8 {
    // lint:allow(narrowing-cast): masked to six bits on the line below
    (x & 63) as u8
}

fn waived_same_line(x: u64) -> u32 {
    (x >> 32) as u32 // lint:allow(narrowing-cast): high word of a u64 fits u32
}

fn exempt_targets(x: u32) -> u128 {
    let wide = x as u128;
    let idx = x as usize;
    wide + idx as u128 + (x as i128) as u128
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_fine() {
        assert_eq!(300u64 as u8, 44);
    }
}
