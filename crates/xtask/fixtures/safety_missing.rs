//! Seeded violation: an `unsafe` block with no SAFETY comment.

fn main() {
    let x: u64 = 5;
    let p = &x as *const u64;
    let y = unsafe { *p };
    println!("{y}");
}
