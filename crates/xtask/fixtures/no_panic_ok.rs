//! Clean fixture: typed error paths in runtime code, a justified waiver,
//! panics confined to `#[cfg(test)]`, and panic-looking tokens inside
//! strings and comments (which must not count).

fn typed(v: &[u32]) -> Result<u32, &'static str> {
    // `.unwrap()` in a comment is not a call.
    let msg = "calling .unwrap() here would panic!(obviously)";
    let _ = msg;
    v.first().copied().ok_or("empty")
}

fn waived(v: &[u32]) -> u32 {
    // lint:allow(no_panic): fixture exercising the waiver path — the
    // caller guarantees `v` is non-empty.
    *v.first().unwrap()
}

fn main() {
    let _ = typed(&[1]);
    let _ = waived(&[2]);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v = vec![1, 2, 3];
        assert_eq!(*v.first().unwrap(), 1);
        v.last().expect("non-empty");
        if v.is_empty() {
            panic!("unreachable in this test");
        }
    }
}
