//! Seeded narrowing-cast violations: two bare sized-integer casts and one
//! waiver missing its mandatory reason. The rule test pins all three.

fn truncates(x: u64) -> u8 {
    x as u8
}

fn wraps(x: u64) -> i32 {
    (x >> 1) as i32
}

fn reasonless(x: u64) -> u16 {
    // lint:allow(narrowing-cast)
    x as u16
}
