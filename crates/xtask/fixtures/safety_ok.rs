//! Clean fixture: every `unsafe` site is covered — by a same-line SAFETY
//! comment, a preceding comment block, a block above an attribute, or an
//! explicit waiver.

fn covered_same_line() {
    let x: u64 = 5;
    let p = &x as *const u64;
    let _y = unsafe { *p }; // SAFETY: p points at the live local above.
}

fn covered_block_above() {
    let x: u64 = 7;
    let p = &x as *const u64;
    // SAFETY: `p` was derived from a reference one line up and `x` is
    // still in scope, so the read is in-bounds and aligned.
    let _y = unsafe { *p };
}

// SAFETY: the function only transmutes sizes that match; callers uphold
// the contract documented here.
#[inline]
unsafe fn covered_through_attribute() {}

fn waived() {
    let x: u64 = 9;
    let p = &x as *const u64;
    // lint:allow(safety_comment): fixture exercising the waiver path.
    let _y = unsafe { *p };
}

fn main() {
    covered_same_line();
    covered_block_above();
    waived();
}
